"""Generality check: the container runtime managing a different science code.

The paper's "current work" targets S3D flame-front tracking.  This bench
runs the S3D stage set (reduce -> front -> track) under the same management
stack and verifies the same qualitative behaviours carry over: bottleneck
detection, spare grants, stateful resizes, zero application blocking.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.s3d.components import S3D_COMPONENTS
from repro.smartpointer.costs import ComputeModel

from conftest import print_series, print_table


def run(steps=30, spare=2):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=9 + spare,
                             spare_staging_nodes=spare,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("reduce", 3, ComputeModel.TREE, upstream=None),
        StageConfig("front", 4, ComputeModel.ROUND_ROBIN, upstream="reduce"),
        StageConfig("track", 2, ComputeModel.ROUND_ROBIN, upstream="front"),
    ]
    for stage in stages:
        stage.spec = (lambda s=stage: S3D_COMPONENTS[s.component])
    pipe = PipelineBuilder(env, wl, stages=stages, seed=0).build()
    pipe.run(settle=300)
    return pipe


def test_s3d_pipeline_managed(benchmark):
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    series = pipe.telemetry.get("front", "latency_by_step")
    print_series(
        "S3D flame-front stage latency by timestep",
        list(zip(series.times, series.values)),
        fmt="{:.0f}:{:.1f}s",
    )
    print_table(
        "Management actions",
        ["t (s)", "action"],
        [[f"{t:.0f}", label] for t, label in pipe.telemetry.events],
    )
    # The front stage (needs 5 units) starts with 4: the runtime fixes it.
    assert "increase front +1" in pipe.global_manager.actions_taken
    assert pipe.containers["front"].units == 5
    # The stateful tracker processed everything with zero app impact.
    assert pipe.containers["track"].completions == 30
    assert pipe.driver.blocked_time == 0.0
    # Output provenance reflects the S3D chain.
    track_files = [f for f in pipe.fs.files if f.name.startswith("track.")]
    assert track_files
    assert track_files[0].attributes["provenance"] == ["reduce", "front", "track"]


def test_s3d_stateful_resize_migrates_tracker(benchmark):
    def run_resize():
        pipe = run(steps=20, spare=3)
        return pipe

    pipe = benchmark.pedantic(run_resize, rounds=1, iterations=1)

    # Force an explicit grow of the stateful tracking stage and check the
    # migration round appears in the protocol trace.
    env2 = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=12,
                             spare_staging_nodes=2,
                             output_interval=15.0, total_steps=10)
    stages = [
        StageConfig("reduce", 3, ComputeModel.TREE, upstream=None),
        StageConfig("front", 5, ComputeModel.ROUND_ROBIN, upstream="reduce"),
        StageConfig("track", 2, ComputeModel.ROUND_ROBIN, upstream="front"),
    ]
    for stage in stages:
        stage.spec = (lambda s=stage: S3D_COMPONENTS[s.component])
    pipe2 = PipelineBuilder(env2, wl, stages=stages, seed=0,
                            control_interval=10_000).build()

    def ctl(env):
        yield env.timeout(30)
        yield pipe2.global_manager.increase("track", 1)

    env2.process(ctl(env2))
    pipe2.run(settle=200)
    record = [r for r in pipe2.tracer.of("increase") if r.container == "track"][0]
    print_table(
        "Stateful S3D resize breakdown",
        ["category", "seconds"],
        [[k, f"{v:.4f}"] for k, v in sorted(record.breakdown.items())],
    )
    assert record.breakdown.get("state_migration", 0.0) > 0
