"""Predictive-management bench: forecaster stack vs pure hysteresis, head to head.

Runs the overload scenario twice — once with the reactive controllers and
once with the :mod:`repro.analytics` forecaster stack attached
(``mode: predictive``) — via :func:`repro.experiments.figures.run_predictive`.
The predictive run must finish, fully restore, and strictly reduce *both*
headline costs of the reactive policy: seconds spent degraded and the
fraction of timesteps shed.  A replay of the predictive run under the same
seed must reproduce the identical degradation ladder, shed accounting,
forecaster sample count and signal count — the analytics layer is part of
the deterministic schedule, not an observer with its own clock.

Emits ``BENCH_predictive.json`` at the repo root via the shared
perf-report machinery: both runs' time-in-degraded and shed fraction, the
deltas, and the analytics sampling counters.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks the run to 12 timesteps.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_predictive.py``.
"""

import os
from pathlib import Path

from repro.experiments.figures import run_predictive
from repro.perf.registry import REGISTRY
from repro.perf.report import load_kernel_report, write_kernel_report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
STEPS = 12 if SMOKE else 24
SEED = 7
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_predictive.json"

#: regression slack on the predictive/reactive time-in-degraded ratio vs
#: the committed baseline's — absolute, because smoke and full runs sit at
#: different scales and only the ratio is comparable across them
GATE_RATIO_SLACK = 0.1


def predictive_metrics(result):
    """Sanity-check one head-to-head result and pull the headlines."""
    assert result["ok"], "predictive experiment reported not-ok"
    reactive = result["reactive"]
    predictive = result["predictive"]
    assert reactive["finished"] and predictive["finished"]
    assert predictive["fully_restored"], "predictive ladder never fully unwound"
    assert predictive["final_stride"] == 1, predictive["final_stride"]
    # The acceptance claim, strictly: both axes improve.
    assert (predictive["time_in_degraded_s"]
            < reactive["time_in_degraded_s"]), "no time-in-degraded win"
    assert predictive["shed_fraction"] < reactive["shed_fraction"], (
        "no shed-fraction win"
    )
    analytics = predictive["analytics"]
    assert analytics["samples"] > 0, "forecaster never sampled"
    return {
        "reactive_time_in_degraded_s": reactive["time_in_degraded_s"],
        "predictive_time_in_degraded_s": predictive["time_in_degraded_s"],
        "time_in_degraded_reduction_s": result["time_in_degraded_reduction_s"],
        "reactive_shed_fraction": reactive["shed_fraction"],
        "predictive_shed_fraction": predictive["shed_fraction"],
        "shed_reduction_steps": result["shed_reduction_steps"],
        "predictive_delivered_steps": predictive["delivered_steps"],
        "reactive_delivered_steps": reactive["delivered_steps"],
        "analytics_samples": analytics["samples"],
        "analytics_signals": analytics["signals"],
        "analytics_series": len(analytics["series"]),
        "shed_by_reason_predictive": predictive["shed_by_reason"],
        "shed_by_reason_reactive": reactive["shed_by_reason"],
    }


def run_suite():
    """Head-to-head run + replay-identity run; returns (metrics, identity)."""
    result = run_predictive(seed=SEED, steps=STEPS)
    metrics = predictive_metrics(result)

    # Replay: same seed, same schedule — ladder, sheds, samples, signals.
    result2 = run_predictive(seed=SEED, steps=STEPS)
    identity = {
        "steps_a": result["predictive"]["degradation_steps"],
        "steps_b": result2["predictive"]["degradation_steps"],
        "shed_a": result["predictive"]["shed_by_reason"],
        "shed_b": result2["predictive"]["shed_by_reason"],
        "analytics_a": result["predictive"]["analytics"],
        "analytics_b": result2["predictive"]["analytics"],
    }
    assert identity["steps_a"] == identity["steps_b"], "degradation trace diverged"
    assert identity["shed_a"] == identity["shed_b"], "shed accounting diverged"
    assert identity["analytics_a"] == identity["analytics_b"], (
        "forecaster state diverged across replays"
    )
    return metrics, identity


def check_gate(metrics, baseline_doc):
    """The CI gate: predictive must not regress past reactive.

    Two layers: in this run, predictive time-in-degraded must be at or
    below reactive (the strict assert in :func:`predictive_metrics`
    already demands strictly below); and the machine-independent
    predictive/reactive ratio must not drift more than
    :data:`GATE_RATIO_SLACK` above the committed baseline's ratio.
    """
    problems = []
    reactive = metrics["reactive_time_in_degraded_s"]
    predictive = metrics["predictive_time_in_degraded_s"]
    if predictive > reactive:
        problems.append(
            f"predictive time-in-degraded {predictive:.1f}s exceeds "
            f"reactive {reactive:.1f}s"
        )
    base = (baseline_doc or {}).get("results", {})
    base_reactive = base.get("predictive.reactive_time_in_degraded_s")
    base_predictive = base.get("predictive.time_in_degraded_s")
    if (isinstance(base_reactive, (int, float)) and base_reactive > 0
            and isinstance(base_predictive, (int, float)) and reactive > 0):
        ratio = predictive / reactive
        base_ratio = base_predictive / base_reactive
        if ratio > base_ratio + GATE_RATIO_SLACK:
            problems.append(
                f"time-in-degraded ratio {ratio:.3f} exceeds committed "
                f"baseline {base_ratio:.3f} + {GATE_RATIO_SLACK} slack"
            )
    return problems


def emit_report(metrics):
    perf = REGISTRY.snapshot()
    counters = {
        k: v for k, v in perf["counters"].items()
        if k.split(".")[0] in ("overload", "analytics", "pipeline")
    }
    results = {
        "predictive.reactive_time_in_degraded_s":
            metrics["reactive_time_in_degraded_s"],
        "predictive.time_in_degraded_s":
            metrics["predictive_time_in_degraded_s"],
        "predictive.time_in_degraded_reduction_s":
            metrics["time_in_degraded_reduction_s"],
        "predictive.reactive_shed_fraction": metrics["reactive_shed_fraction"],
        "predictive.shed_fraction": metrics["predictive_shed_fraction"],
    }
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters={
            **counters,
            "predictive.shed_reduction_steps": metrics["shed_reduction_steps"],
            "predictive.analytics_samples": metrics["analytics_samples"],
            "predictive.analytics_signals": metrics["analytics_signals"],
            "predictive.analytics_series": metrics["analytics_series"],
        },
        meta={
            "bench": "bench_predictive",
            "smoke": SMOKE,
            "seed": SEED,
            "steps": STEPS,
            "shed_by_reason_predictive": metrics["shed_by_reason_predictive"],
            "shed_by_reason_reactive": metrics["shed_by_reason_reactive"],
            "scenario": (
                "overload preset, reactive vs predictive overload policy, "
                "seeded burst/ramp slowdown"
            ),
        },
    )
    return doc


def test_predictive_head_to_head(benchmark):
    from conftest import print_table

    baseline_doc = load_kernel_report(REPORT_PATH)
    metrics, identity = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    problems = check_gate(metrics, baseline_doc)
    emit_report(metrics)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "time_in_degraded_reduction_s":
                metrics["time_in_degraded_reduction_s"],
            "shed_reduction_steps": metrics["shed_reduction_steps"],
        }
    )
    print_table(
        "Predictive vs reactive overload metrics",
        ["Metric", "Value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
         for k, v in sorted(metrics.items())],
    )
    assert identity["steps_a"] == identity["steps_b"]
    assert not problems, "; ".join(problems)


def main():
    baseline_doc = load_kernel_report(REPORT_PATH)
    metrics, _ = run_suite()
    problems = check_gate(metrics, baseline_doc)
    emit_report(metrics)
    for name, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"{name:36s} {value:12.3f}")
        else:
            print(f"{name:36s} {value!s:>12}")
    print(f"wrote {REPORT_PATH}")
    if problems:
        raise SystemExit("predictive bench regression:\n  " + "\n  ".join(problems))


if __name__ == "__main__":
    main()
