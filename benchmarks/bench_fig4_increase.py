"""Figure 4: time to increase container size.

The paper's findings, which this bench reproduces as shape criteria:

1. cost grows with the number of replicas added (x-axis);
2. the dominant term is the intra-container communication — the metadata
   exchanges that wire each new replica to its peers and upstream writers;
3. point-to-point messages between the container manager and the global
   manager are nearly negligible;
4. the aprun launch cost (3-27 s, for MPI-model components) is reported
   separately and factored out, exactly as the paper does.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig, default_stages
from repro.smartpointer.costs import ComputeModel

from conftest import print_table

SIZES = (1, 2, 4, 8, 16)


def run_increase_sweep(model=ComputeModel.ROUND_ROBIN):
    results = []
    for size in SIZES:
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13 + 16,
                                 output_interval=15.0, total_steps=4)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 4, model, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()

        def do(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", size)

        env.process(do(env))
        pipe.run(settle=120)
        record = pipe.tracer.of("increase")[0]
        results.append((size, record))
    return results


def test_fig4_increase_cost(benchmark):
    results = benchmark.pedantic(run_increase_sweep, rounds=1, iterations=1)
    rows = []
    for size, record in results:
        intra = record.breakdown.get("intra_container", 0.0)
        mgr = record.breakdown.get("manager", 0.0)
        rows.append([size, f"{record.total:.4f}", f"{intra:.4f}", f"{mgr:.6f}"])
    print_table(
        "Figure 4: Time to Increase Container Size (seconds, aprun excluded)",
        ["Replicas added", "Total", "Intra-container", "Manager msgs"],
        rows,
    )
    benchmark.extra_info["series"] = [
        {"size": s, "total": r.total, "intra": r.breakdown.get("intra_container", 0),
         "manager": r.breakdown.get("manager", 0)}
        for s, r in results
    ]

    totals = [r.total for _, r in results]
    intras = [r.breakdown.get("intra_container", 0.0) for _, r in results]
    managers = [r.breakdown.get("manager", 0.0) for _, r in results]
    # (1) cost grows with the size of the increase
    assert totals == sorted(totals)
    assert totals[-1] > totals[0] * 4
    # (2) intra-container communication dominates
    for intra, mgr, total in zip(intras, managers, totals):
        assert intra > 0.5 * total
        # (3) manager messages nearly negligible
        assert mgr < 0.1 * intra


def test_fig4_aprun_dwarfs_protocol_for_mpi_model(benchmark):
    """The paper: aprun (3-27 s) 'completely dwarfs all other measurements'.
    For a PARALLEL (MPI) component the relaunch is charged separately."""

    def run():
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13 + 8,
                                 output_interval=15.0, total_steps=4)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 4, ComputeModel.PARALLEL, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=7,
                               control_interval=10_000).build()

        def do(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", 4)

        env.process(do(env))
        pipe.run(settle=120)
        return pipe.tracer.of("increase")[0]

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    launch = record.breakdown.get("launch", 0.0)
    intra = record.breakdown.get("intra_container", 0.0)
    print_table(
        "Figure 4 (MPI model): aprun relaunch vs protocol",
        ["aprun (s)", "intra-container (s)", "ratio"],
        [[f"{launch:.2f}", f"{intra:.4f}", f"{launch / max(intra, 1e-9):.0f}x"]],
    )
    assert 3.0 <= launch <= 27.0
    assert launch > 10 * intra  # dwarfs everything else
