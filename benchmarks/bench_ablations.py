"""Ablations of the design choices DESIGN.md calls out.

1. **Pull scheduling** (DataStager) vs unscheduled pulls — scheduled pulls
   bound concurrent RDMA traffic into the staging area.
2. **Writer pause during decrease** (strict) vs no-pause (aggressive, the
   'less aggressive consistency' the paper leaves to future work) — strict
   never loses a timestep; skipping the pause is faster but loses the
   safety argument (we quantify the pause cost it saves).
3. **Bottleneck policy**: the paper's longest-average-latency policy vs the
   queue-derivative policy — reaction time to the Figure 7 bottleneck.
4. **aprun relaunch** for MPI-model containers vs round-robin spawning —
   the launch artifact dominates MPI resizes.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.containers.policy import LatencyPolicy, QueueDerivativePolicy
from repro.smartpointer.costs import ComputeModel

from conftest import print_table


def fig7_pipe(policy=None, use_pull_scheduler=True, steps=40, model=ComputeModel.ROUND_ROBIN):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13, spare_staging_nodes=0,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 4, model, upstream="helper"),
        StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        StageConfig("cna", 2, ComputeModel.ROUND_ROBIN, upstream="bonds", standby=True),
    ]
    pipe = PipelineBuilder(env, wl, stages=stages, seed=1, policy=policy,
                           use_pull_scheduler=use_pull_scheduler).build()
    pipe.run(settle=600)
    return pipe


class TestPullScheduling:
    def test_scheduler_bounds_concurrent_pulls(self, benchmark):
        def run():
            return fig7_pipe(use_pull_scheduler=True, steps=15)

        pipe = benchmark.pedantic(run, rounds=1, iterations=1)
        # The builder shares one scheduler across the LAMMPS->Helper edge.
        sched = pipe.driver.pull_scheduler
        print_table(
            "Ablation 1: DataStager pull scheduling",
            ["pulls admitted", "aggregate wait (s)"],
            [[sched.pulls_admitted, f"{sched.total_wait:.3f}"]],
        )
        assert sched.pulls_admitted == 15 * 4  # every fragment pulled
        assert pipe.containers["helper"].completions == 15

    def test_unscheduled_still_correct_but_unbounded(self, benchmark):
        def run():
            return fig7_pipe(use_pull_scheduler=False, steps=15)

        pipe = benchmark.pedantic(run, rounds=1, iterations=1)
        assert pipe.driver.pull_scheduler is None
        assert pipe.containers["helper"].completions == 15


class TestWriterPauseConsistency:
    def test_strict_pause_never_loses_timesteps(self, benchmark):
        """Decrease with the pause protocol: all 30 steps analyzed."""

        def run():
            env = Environment()
            wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=24,
                                     output_interval=15.0, total_steps=30)
            stages = [
                StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
                StageConfig("bonds", 12, ComputeModel.ROUND_ROBIN, upstream="helper"),
                StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
            ]
            pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                                   control_interval=10_000).build()

            def ctl(env):
                for _ in range(3):
                    yield env.timeout(60)
                    yield pipe.global_manager.decrease("bonds", 2)

            env.process(ctl(env))
            pipe.run(settle=600)
            return pipe

        pipe = benchmark.pedantic(run, rounds=1, iterations=1)
        assert pipe.containers["bonds"].units == 6
        assert pipe.containers["bonds"].completions == 30  # zero loss
        pauses = sum(r.breakdown.get("writer_pause", 0)
                     for r in pipe.tracer.of("decrease"))
        print_table(
            "Ablation 2: strict writer pause",
            ["decreases", "total pause cost (s)", "timesteps lost"],
            [[3, f"{pauses:.3f}", 0]],
        )
        assert pauses > 0

    def test_pause_cost_is_small_vs_pipeline_time(self, benchmark):
        """The consistency guarantee costs well under one output interval
        per decrease — the 'transient' of Figure 7, not a structural cost."""

        def run():
            env = Environment()
            wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=24,
                                     output_interval=15.0, total_steps=20)
            stages = [
                StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
                StageConfig("bonds", 12, ComputeModel.ROUND_ROBIN, upstream="helper"),
                StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
            ]
            pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                                   control_interval=10_000).build()

            def ctl(env):
                yield env.timeout(60)
                yield pipe.global_manager.decrease("bonds", 4)

            env.process(ctl(env))
            pipe.run(settle=600)
            return pipe.tracer.of("decrease")[0]

        record = benchmark.pedantic(run, rounds=1, iterations=1)
        assert record.breakdown["writer_pause"] < 15.0


class TestPolicyComparison:
    def test_latency_vs_queue_derivative_reaction(self, benchmark):
        def run():
            latency = fig7_pipe(policy=LatencyPolicy(), steps=30)
            queue = fig7_pipe(policy=QueueDerivativePolicy(growth_threshold=0.001),
                              steps=30)
            return latency, queue

        latency_pipe, queue_pipe = benchmark.pedantic(run, rounds=1, iterations=1)

        def first_action_time(pipe):
            return pipe.telemetry.events[0][0] if pipe.telemetry.events else None

        rows = []
        for name, pipe in (("latency (paper)", latency_pipe),
                           ("queue-derivative", queue_pipe)):
            series = pipe.telemetry.get("bonds", "latency_by_step")
            rows.append([
                name,
                f"{first_action_time(pipe):.0f}" if first_action_time(pipe) else "-",
                pipe.containers["bonds"].units,
                f"{series.values[-1]:.1f}",
            ])
        print_table(
            "Ablation 3: policy comparison (Figure 7 scenario)",
            ["policy", "first action (s)", "final bonds units", "final latency (s)"],
            rows,
        )
        # Both converge to a sustainable allocation.
        assert latency_pipe.containers["bonds"].units >= 5
        assert queue_pipe.containers["bonds"].units >= 5
        assert latency_pipe.driver.blocked_time == 0.0
        assert queue_pipe.driver.blocked_time == 0.0


class TestAprunArtifact:
    def test_mpi_resize_dominated_by_launch(self, benchmark):
        """RR spawning vs MPI teardown+aprun: the paper's motivation for
        preferring stream-style components for dynamic management."""

        def run():
            results = {}
            for model in (ComputeModel.ROUND_ROBIN, ComputeModel.PARALLEL):
                env = Environment()
                wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=20,
                                         output_interval=15.0, total_steps=4)
                stages = [
                    StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
                    StageConfig("bonds", 4, model, upstream="helper"),
                    StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
                ]
                pipe = PipelineBuilder(env, wl, stages=stages, seed=3,
                                       control_interval=10_000).build()

                def do(env, pipe=pipe):
                    yield env.timeout(1)
                    yield pipe.global_manager.increase("bonds", 4)

                env.process(do(env))
                pipe.run(settle=120)
                results[model] = pipe.tracer.of("increase")[0]
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rr = results[ComputeModel.ROUND_ROBIN]
        mpi = results[ComputeModel.PARALLEL]
        print_table(
            "Ablation 4: resize cost by compute model (+4 nodes)",
            ["model", "total (s)", "launch (s)", "protocol (s)"],
            [
                ["round-robin", f"{rr.total:.3f}", "0", f"{rr.total:.3f}"],
                ["MPI (aprun)", f"{mpi.total:.3f}",
                 f"{mpi.breakdown.get('launch', 0):.2f}",
                 f"{mpi.total - mpi.breakdown.get('launch', 0):.3f}"],
            ],
        )
        assert mpi.total > rr.total * 5
        assert mpi.breakdown.get("launch", 0) >= 3.0
