"""Ablation: monitoring transport — direct reports vs aggregation overlay.

Section III-E: monitoring runs over 'dynamic overlays' with configurable
capture rate, processing location, and aggregation, "to minimize
perturbation to applications from the monitoring carried out by I/O
containers".  This bench quantifies the perturbation difference at a scale
where it matters: many managed containers reporting to one global manager.
"""

import pytest

from repro.simkernel import Environment
from repro.cluster import Machine
from repro.evpath import Messenger, OverlayTree

from conftest import print_table

N_REPORTERS = 48
WINDOWS = 6
INTERVAL = 15.0


def run_direct():
    env = Environment()
    machine = Machine(env, num_nodes=N_REPORTERS + 2)
    messenger = Messenger(env, machine.network)
    gm_node = machine.nodes[0]
    received = []
    ep = messenger.endpoint(gm_node, "gm")

    def sink(env):
        while True:
            msg = yield ep.recv()
            received.append(msg)

    def reporter(env, node, idx):
        for _ in range(WINDOWS):
            yield env.timeout(INTERVAL)
            from repro.evpath import Message, MessageType

            yield messenger.send(node, "gm", Message(
                MessageType.METRIC_REPORT, sender=f"r{idx}",
                payload={"latency": 1.0}, size_bytes=512,
            ))

    env.process(sink(env))
    for i in range(N_REPORTERS):
        env.process(reporter(env, machine.nodes[2 + i], i))
    env.run(until=WINDOWS * INTERVAL + 10)
    root_messages = len(received)
    return len(received), root_messages


def run_overlay():
    env = Environment()
    machine = Machine(env, num_nodes=N_REPORTERS + 2)
    messenger = Messenger(env, machine.network)
    gm_node = machine.nodes[0]
    received = []
    overlay = OverlayTree(
        env, messenger, gm_node, machine.nodes[2 : 2 + N_REPORTERS],
        on_report=received.append, fanout=4, flush_interval=INTERVAL,
    )

    def reporter(env, node):
        for _ in range(WINDOWS):
            yield env.timeout(INTERVAL)
            yield overlay.submit(node, {"latency": 1.0})

    for i in range(N_REPORTERS):
        env.process(reporter(env, machine.nodes[2 + i]))
    env.run(until=WINDOWS * INTERVAL + 60)
    overlay.stop()
    return len(received), overlay.root_ingress


def test_overlay_reduces_root_hotspot(benchmark):
    def both():
        return run_direct(), run_overlay()

    (direct_received, direct_root), (overlay_received, overlay_root) = \
        benchmark.pedantic(both, rounds=1, iterations=1)
    print_table(
        f"Monitoring ablation ({N_REPORTERS} reporters x {WINDOWS} windows)",
        ["transport", "reports delivered", "messages into GM node"],
        [
            ["direct", direct_received, direct_root],
            ["overlay (windowed)", overlay_received, overlay_root],
        ],
    )
    benchmark.extra_info.update({
        "direct_root": direct_root, "overlay_root": overlay_root,
    })
    # Nothing lost either way.
    assert direct_received == N_REPORTERS * WINDOWS
    assert overlay_received == N_REPORTERS * WINDOWS
    # The hot spot at the global manager shrinks by ~fanout-tree factor.
    assert overlay_root < direct_root / 3


def test_overlay_monitoring_pipeline_equivalence(benchmark):
    """Full pipeline: the overlay transport changes perturbation, not the
    management outcome."""
    from repro import PipelineBuilder, WeakScalingWorkload

    def both():
        results = {}
        for mode in ("direct", "overlay"):
            env = Environment()
            wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                     output_interval=15.0, total_steps=25)
            pipe = PipelineBuilder(env, wl, seed=1, monitoring=mode).build()
            pipe.run(settle=300)
            results[mode] = pipe
        return results

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    for mode, pipe in results.items():
        assert pipe.containers["bonds"].units >= 5, mode
        assert pipe.driver.blocked_time == 0.0, mode
    rows = [[mode,
             len(pipe.global_manager.actions_taken),
             pipe.containers["bonds"].units]
            for mode, pipe in results.items()]
    print_table("Pipeline outcome by monitoring transport",
                ["mode", "actions", "final bonds units"], rows)
