"""Figure 5: time to decrease container size.

Paper finding: "the largest source of overhead is waiting for the replicas'
upstream DataTap writers to pause to avoid data loss."  The bench sweeps
decrease sizes and prints the breakdown, asserting writer-pause dominance.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel

from conftest import print_table

SIZES = (1, 2, 4, 8)


def run_decrease_sweep(active_traffic=True):
    results = []
    for size in SIZES:
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=24,
                                 output_interval=15.0, total_steps=20)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 12, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()

        def do(env):
            # Let data flow first so writers are genuinely active.
            yield env.timeout(40 if active_traffic else 1)
            yield pipe.global_manager.decrease("bonds", size)

        env.process(do(env))
        pipe.run(settle=120)
        record = pipe.tracer.of("decrease")[0]
        results.append((size, record))
    return results


def test_fig5_decrease_cost(benchmark):
    results = benchmark.pedantic(run_decrease_sweep, rounds=1, iterations=1)
    rows = []
    for size, record in results:
        pause = record.breakdown.get("writer_pause", 0.0)
        mgr = record.breakdown.get("manager", 0.0)
        rows.append([size, f"{record.total:.4f}", f"{pause:.4f}", f"{mgr:.6f}"])
    print_table(
        "Figure 5: Time to Decrease Container Size (seconds)",
        ["Replicas removed", "Total", "Writer pause", "Manager msgs"],
        rows,
    )
    benchmark.extra_info["series"] = [
        {"size": s, "total": r.total,
         "writer_pause": r.breakdown.get("writer_pause", 0)}
        for s, r in results
    ]
    for size, record in results:
        pause = record.breakdown.get("writer_pause", 0.0)
        mgr = record.breakdown.get("manager", 0.0)
        # The paper's headline: writer pause dominates the decrease.
        assert pause > 0.5 * record.total, f"size {size}: pause {pause} vs {record.total}"
        assert mgr < pause


def test_fig5_no_timestep_lost_during_decrease(benchmark):
    """The pause exists to avoid losing timesteps; verify it works."""

    def run():
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=24,
                                 output_interval=15.0, total_steps=20)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 12, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()

        def do(env):
            yield env.timeout(40)
            yield pipe.global_manager.decrease("bonds", 6)

        env.process(do(env))
        pipe.run(settle=600)
        return pipe

    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pipe.containers["bonds"].completions == 20
    assert pipe.containers["bonds"].units == 6
