"""Overload bench: burst saturation + brownout ladder on tight staging buffers.

A seeded burst/ramp slowdown (see
:func:`repro.overload.scenario.overload_burst_plan`) saturates the analysis
stages of a small-buffered Figure-7 configuration while the overload
machinery is live: credit-based backpressure raises the LAMMPS driver's
output stride as staging headroom vanishes, the SLA brownout ladder
escalates (increase -> steal -> stride -> offline) and later unwinds every
rung with hysteresis, and the shed ledger attributes every undelivered
timestep to exactly one shed decision.  The run must finish inside the SLA
horizon, fully restore (driver stride back to 1, no pruned containers left
offline), and account for every emitted timestep.  The same seed is run
twice and the delivery/degradation records must be identical.

Emits ``BENCH_overload.json`` at the repo root via the shared perf-report
machinery (same schema as ``BENCH_kernels.json``): SLA compliance, shed
fraction, time in degraded mode, and recovery dwell, plus every
``overload.*`` / ``datatap.*`` counter the run accumulated.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks the run to 12 timesteps.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_overload.py``.
"""

import os
from pathlib import Path

from repro.experiments.figures import run_overload
from repro.perf.registry import REGISTRY
from repro.perf.report import write_kernel_report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
STEPS = 12 if SMOKE else 24
SEED = 7
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_overload.json"


def overload_metrics(result):
    """Sanity-check one overload experiment result and pull the headlines."""
    managed = result["managed"]
    assert managed["finished"], "managed overload run did not finish"
    assert managed["fully_restored"], "brownout ladder never fully unwound"
    assert managed["final_stride"] == 1, managed["final_stride"]
    assert not managed["offline_containers"], managed["offline_containers"]
    assert not managed["unaccounted_steps"], (
        f"timesteps with no fate: {managed['unaccounted_steps']}"
    )
    baseline = result.get("unmanaged")
    if baseline is not None:
        assert not baseline["finished"], (
            "unmanaged baseline finished inside the SLA horizon — "
            "the burst no longer wedges the producer"
        )
    ladder_kinds = {s["action"] for s in managed["degradation_steps"]
                    if s["kind"] == "brownout"}
    assert ladder_kinds & {"steal", "stride", "offline", "increase"}, ladder_kinds
    assert any(a.startswith("undo_") for a in ladder_kinds), ladder_kinds
    return {
        "sla_compliance_pct": managed["sla_compliance_pct"],
        "shed_fraction": managed["shed_fraction"],
        "time_in_degraded_s": managed["time_in_degraded_s"],
        "recovery_dwell_s": managed["recovery_dwell_s"] or 0.0,
        "delivered_steps": managed["delivered_steps"],
        "shed_steps": managed["shed_steps"],
        "degradation_transitions": len(managed["degradation_steps"]),
        "baseline_blocked_s": (
            baseline["blocked_seconds"] if baseline is not None else 0.0
        ),
        "shed_by_reason": managed["shed_by_reason"],
    }


def run_suite():
    """Overload run + replay-identity run; returns (metrics, identity_blob)."""
    result = run_overload(seed=SEED, steps=STEPS)
    assert result["ok"], "overload experiment reported not-ok"
    metrics = overload_metrics(result)

    # Replay: the identical seed must reproduce the identical degradation
    # ladder and delivery/shed accounting.
    result2 = run_overload(seed=SEED, steps=STEPS, include_baseline=False)
    identity = {
        "steps_a": result["managed"]["degradation_steps"],
        "steps_b": result2["managed"]["degradation_steps"],
        "shed_a": result["managed"]["shed_by_reason"],
        "shed_b": result2["managed"]["shed_by_reason"],
    }
    assert identity["steps_a"] == identity["steps_b"], "degradation trace diverged"
    assert identity["shed_a"] == identity["shed_b"], "shed accounting diverged"
    return metrics, identity


def emit_report(metrics):
    perf = REGISTRY.snapshot()
    overload_counters = {
        k: v for k, v in perf["counters"].items()
        if k.split(".")[0] in ("overload", "datatap", "pipeline")
    }
    results = {
        "overload.sla_compliance_pct": metrics["sla_compliance_pct"],
        "overload.shed_fraction": metrics["shed_fraction"],
        "overload.time_in_degraded_s": metrics["time_in_degraded_s"],
        "overload.recovery_dwell_s": metrics["recovery_dwell_s"],
    }
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters={
            **overload_counters,
            "overload.delivered_steps": metrics["delivered_steps"],
            "overload.shed_steps": metrics["shed_steps"],
            "overload.degradation_transitions": metrics["degradation_transitions"],
        },
        meta={
            "bench": "bench_overload",
            "smoke": SMOKE,
            "seed": SEED,
            "steps": STEPS,
            "shed_by_reason": metrics["shed_by_reason"],
            "baseline_blocked_s": round(metrics["baseline_blocked_s"], 1),
            "scenario": "fig7 mix, tight buffers, seeded burst/ramp slowdown",
        },
    )
    return doc


def test_overload_brownout(benchmark):
    from conftest import print_table

    metrics, identity = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    doc = emit_report(metrics)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "sla_compliance_pct": metrics["sla_compliance_pct"],
            "shed_fraction": metrics["shed_fraction"],
        }
    )
    print_table(
        "Overload / brownout metrics",
        ["Metric", "Value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
         for k, v in sorted(metrics.items())],
    )
    assert identity["steps_a"] == identity["steps_b"]


def main():
    metrics, _ = run_suite()
    emit_report(metrics)
    for name, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"{name:28s} {value:12.3f}")
        else:
            print(f"{name:28s} {value!s:>12}")
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
