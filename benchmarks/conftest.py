"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Conventions:

* ``benchmark.pedantic(..., rounds=1)`` wraps the experiment (simulations are
  deterministic; repeated rounds add nothing);
* the reproduced rows/series are printed to stdout in the shape the paper
  reports, and attached to ``benchmark.extra_info`` for machine consumption;
* assertions encode the DESIGN.md shape criteria so a regression in the
  reproduction fails the bench run.
"""

import sys

import pytest

from repro.perf.cache import KERNEL_CACHE
from repro.perf.registry import REGISTRY


@pytest.fixture(autouse=True)
def perf_registry():
    """Fresh perf timers/counters (and an empty kernel cache) per bench, so
    each bench's ``BENCH_*.json`` / ``extra_info`` numbers are its own."""
    REGISTRY.reset()
    KERNEL_CACHE.clear()
    yield REGISTRY
    REGISTRY.reset()
    KERNEL_CACHE.clear()


def print_table(title, headers, rows):
    """Render a fixed-width table to stdout (shown with pytest -s or on the
    captured report)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out = [f"\n== {title} ==", line, "  ".join("-" * w for w in widths)]
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(out)
    print(text)
    # pytest captures stdout; also mirror to stderr-unbuffered for -s runs.
    return text


def print_series(title, pairs, fmt="{:.0f}:{:.1f}"):
    print(f"\n== {title} ==")
    print("  ".join(fmt.format(x, y) for x, y in pairs))
