"""Fleet bench: N tenant pipelines on one machine under the fleet arbiter.

Runs the canonical mixed-tenant slate (tenant ``t00`` = tight-buffer
overload preset with the seeded burst at lowest priority; the rest
alternate the fig7 and S3D mixes) in a single simulation and measures the
headline: tenants x per-tenant SLA compliance x aggregate simulator
events/sec.  The acceptance properties are asserted, not just reported:
every tenant finishes and accounts for every timestep, t00 browns out,
no other tenant misses its SLA, and the arbiter's event-time quota audit
stays clean.  The same seed is then replayed and the per-tenant
delivery/shed/degradation records plus the full arbiter decision trace
must be identical.

Emits ``BENCH_fleet.json`` at the repo root via the shared perf-report
machinery (same schema as ``BENCH_kernels.json``), including the
``fleet.<tenant>.*`` occupancy/loan counters.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks the fleet to 8 tenants.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_fleet.py``.
"""

import os
import time
from pathlib import Path

from repro.experiments.figures import run_fleet
from repro.perf.registry import REGISTRY
from repro.perf.report import write_kernel_report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
TENANTS = 8 if SMOKE else 32
STEPS = 6
SEED = 7
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def fleet_metrics(result, wall_seconds):
    """Sanity-check one fleet experiment result and pull the headlines."""
    assert result["ok"], (
        f"fleet experiment reported not-ok: unaccounted={result['unaccounted']} "
        f"browned_out={result['overloaded_browned_out']} "
        f"others_met_sla={result['others_met_sla']} "
        f"arbiter_violations={result['arbiter']['violations']}"
    )
    rows = result["rows"]
    victims = [r for r in rows if r["preset"] == "overload"]
    others = [r for r in rows if r["preset"] != "overload"]
    assert victims and all(r["degradations"] > 0 for r in victims), victims
    assert all(r["sla_compliance"] == 1.0 for r in others), [
        r for r in others if r["sla_compliance"] != 1.0
    ]
    compliances = [r["sla_compliance"] for r in rows]
    return {
        "tenants": result["tenants"],
        "mean_sla_compliance": sum(compliances) / len(compliances),
        "min_other_sla_compliance": min(r["sla_compliance"] for r in others),
        "victim_shed_steps": sum(r["shed"] for r in victims),
        "victim_degradations": sum(r["degradations"] for r in victims),
        "events_processed": result["events_processed"],
        "events_per_sec": result["events_processed"] / max(wall_seconds, 1e-9),
        "arbiter_actions": result["arbiter"]["actions"],
    }


def run_suite():
    """Fleet run + replay-identity run; returns (metrics, identity_blob)."""
    t0 = time.perf_counter()
    result = run_fleet(seed=SEED, tenants=TENANTS, steps=STEPS)
    wall = time.perf_counter() - t0
    metrics = fleet_metrics(result, wall)

    # Replay: the identical seed must reproduce identical per-tenant
    # accounting and the identical arbiter decision sequence.
    result2 = run_fleet(seed=SEED, tenants=TENANTS, steps=STEPS)
    identity = {
        "rows_a": result["rows"],
        "rows_b": result2["rows"],
        "arbiter_a": result["arbiter"]["trace"],
        "arbiter_b": result2["arbiter"]["trace"],
        "sig_a": result["plan_signature"],
        "sig_b": result2["plan_signature"],
    }
    assert identity["rows_a"] == identity["rows_b"], "tenant accounting diverged"
    assert identity["arbiter_a"] == identity["arbiter_b"], "arbiter trace diverged"
    assert identity["sig_a"] == identity["sig_b"], "fault plan diverged"
    return metrics, identity


def emit_report(metrics):
    perf = REGISTRY.snapshot()
    fleet_counters = {
        k: v for k, v in perf["counters"].items()
        if k.split(".")[0] in ("fleet", "overload", "pipeline")
    }
    results = {
        "fleet.tenants": metrics["tenants"],
        "fleet.mean_sla_compliance": metrics["mean_sla_compliance"],
        "fleet.min_other_sla_compliance": metrics["min_other_sla_compliance"],
        "fleet.events_per_sec": metrics["events_per_sec"],
    }
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters={
            **fleet_counters,
            "fleet.victim_shed_steps": metrics["victim_shed_steps"],
            "fleet.victim_degradations": metrics["victim_degradations"],
            "fleet.events_processed": metrics["events_processed"],
        },
        meta={
            "bench": "bench_fleet",
            "smoke": SMOKE,
            "seed": SEED,
            "tenants": metrics["tenants"],
            "steps": STEPS,
            "arbiter_actions": metrics["arbiter_actions"],
            "scenario": (
                "mixed overload/fig7/s3d tenants, shared spare pool, "
                "seeded burst on t00 + one crash plan"
            ),
        },
    )
    return doc


def test_fleet(benchmark):
    from conftest import print_table

    metrics, identity = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    emit_report(metrics)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "tenants": metrics["tenants"],
            "events_per_sec": metrics["events_per_sec"],
        }
    )
    print_table(
        "Fleet metrics",
        ["Metric", "Value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
         for k, v in sorted(metrics.items())],
    )
    assert identity["rows_a"] == identity["rows_b"]


def main():
    metrics, _ = run_suite()
    emit_report(metrics)
    for name, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"{name:28s} {value:12.3f}")
        else:
            print(f"{name:28s} {value!s:>12}")
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
