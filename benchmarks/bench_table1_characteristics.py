"""Table I: characteristics of the SmartPointer analysis actions.

Regenerates each row — complexity, compute model, dynamic branching — and
*verifies the complexity column empirically* by timing the real kernels over
a range of atom counts and fitting the scaling exponent:

* Helper (merge):       O(n)    — fitted exponent ~1
* Bonds (naive scan):   O(n^2)  — fitted exponent ~2
* CSym:                 O(n)    — fitted exponent ~1
* CNA (dense core):     O(n^3)  — fitted exponent ~3 (A @ A on n x n)
"""

import time

import numpy as np
import pytest

from repro.lammps import hex_lattice
from repro.lammps.crack import BOND_CUTOFF
from repro.smartpointer import (
    SMARTPOINTER_COMPONENTS,
    bonds_adjacency,
    central_symmetry,
    helper_merge,
)
from repro.smartpointer.cna import cna_dense
from repro.smartpointer.helper import partition_atoms

from conftest import print_table


def fit_exponent(sizes, times):
    """Least-squares slope of log(time) vs log(n)."""
    return float(np.polyfit(np.log(sizes), np.log(times), 1)[0])


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_helper():
    sizes, times = [], []
    for nx in (40, 80, 160, 320):
        pos, _ = hex_lattice(nx, 40)
        n = len(pos)
        data = {"id": np.arange(n, dtype=np.uint32), "x": pos[:, 0], "y": pos[:, 1]}
        fragments = partition_atoms(data, 8)
        sizes.append(n)
        times.append(_time(lambda: helper_merge(fragments)))
    return sizes, times


def measure_bonds_naive():
    sizes, times = [], []
    for nx in (12, 24, 48, 72):
        pos, _ = hex_lattice(nx, 12)
        sizes.append(len(pos))
        times.append(_time(lambda: bonds_adjacency(pos, BOND_CUTOFF, "naive")))
    return sizes, times


def measure_csym():
    # Sizes start at ~2k atoms: the batched kernel's fixed setup cost
    # dominates below that and would flatten the fitted exponent.
    from repro.perf.cache import KERNEL_CACHE

    sizes, times = [], []
    for nx in (40, 80, 160, 240):
        pos, _ = hex_lattice(nx, 48)
        sizes.append(len(pos))
        KERNEL_CACHE.clear()
        times.append(_time(lambda: central_symmetry(pos, 6, 1.5), repeats=1))
    return sizes, times


def measure_cna_dense():
    rng = np.random.default_rng(0)
    sizes, times = [], []
    for n in (100, 200, 400, 800):
        a = rng.random((n, n)) < 0.02
        a = a | a.T
        np.fill_diagonal(a, False)
        sizes.append(n)
        times.append(_time(lambda: cna_dense(a)))
    return sizes, times


EXPECTED = {
    # component: (measure fn, expected exponent, tolerance)
    "helper": (measure_helper, 1.0, 0.6),
    "bonds": (measure_bonds_naive, 2.0, 0.6),
    "csym": (measure_csym, 1.0, 0.5),
    "cna": (measure_cna_dense, 3.0, 0.9),
}


@pytest.mark.parametrize("name", list(EXPECTED))
def test_table1_complexity_fits(benchmark, name):
    measure, expected, tol = EXPECTED[name]
    sizes, times = benchmark.pedantic(measure, rounds=1, iterations=1)
    exponent = fit_exponent(sizes, times)
    spec = SMARTPOINTER_COMPONENTS[name]
    benchmark.extra_info.update(
        {
            "declared": spec.complexity,
            "fitted_exponent": round(exponent, 2),
            "compute_models": [m.value for m in spec.compute_models],
            "dynamic_branching": spec.dynamic_branching,
        }
    )
    print_table(
        f"Table I row: {name}",
        ["Component", "Complexity", "Fitted exp", "Compute model", "Dyn. branching"],
        [[
            name,
            spec.complexity,
            f"{exponent:.2f}",
            ", ".join(m.value for m in spec.compute_models),
            "Yes" if spec.dynamic_branching else "No",
        ]],
    )
    assert abs(exponent - expected) <= tol, (
        f"{name}: fitted exponent {exponent:.2f}, expected ~{expected}"
    )


def test_table1_full(benchmark):
    """The complete Table I as the paper prints it."""

    def build():
        rows = []
        for name, spec in SMARTPOINTER_COMPONENTS.items():
            models = {
                "tree": "Tree",
                "serial": "Serial",
                "rr": "RR",
                "parallel": "Parallel",
            }
            rows.append([
                name.capitalize(),
                spec.complexity,
                ", ".join(models[m.value] for m in spec.compute_models),
                "Yes" if spec.dynamic_branching else "No",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table("Table I: SmartPointer analysis actions",
                ["", "Complexity", "Compute Model", "Dynamic Branching"], rows)
    by_name = {r[0]: r for r in rows}
    assert by_name["Helper"][1:] == ["O(n)", "Tree", "No"]
    assert by_name["Bonds"][1:] == ["O(n^2)", "Serial, RR, Parallel", "Yes"]
    assert by_name["Csym"][1:] == ["O(n)", "Serial, RR", "No"]
    assert by_name["Cna"][1:] == ["O(n^3)", "Serial, RR", "No"]
