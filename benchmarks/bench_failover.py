"""Failover bench: degrade-to-disk spill/replay against reactive shedding.

Runs the head-to-head failover experiment (see
:func:`repro.experiments.figures.run_failover`): the same tight-buffer
Figure-7 configuration and seeded burst as the overload bench, once with
the lossy reactive stack (the paper's behavior — shed timesteps are gone)
and once with the degrade-to-disk failover layer attached (every would-be
shed spills to a durable segment store and is replayed once the pressure
clears).  The acceptance bar is absolute: the reactive baseline must lose
data under this burst, the failover run must end with a shed fraction of
exactly 0.0 and 100% eventual delivery, the spill backlog must fully
settle (no pending segments), and a rerun of the same seed must produce
an identical spill ledger and identical handover records.

Emits ``BENCH_failover.json`` at the repo root via the shared perf-report
machinery (same schema as ``BENCH_kernels.json``): shed fractions on both
sides, eventual delivery, catch-up time and worst replay latency, plus
every ``failover.*`` counter the run accumulated.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks the run to 12 timesteps.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_failover.py``.
"""

import os
from pathlib import Path

from repro.experiments.figures import run_failover
from repro.perf.registry import REGISTRY
from repro.perf.report import write_kernel_report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
STEPS = 12 if SMOKE else 24
SEED = 7
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_failover.json"


def failover_metrics(result):
    """Sanity-check the failover experiment result and pull the headlines."""
    reactive, fo = result["reactive"], result["failover"]
    assert reactive["finished"], "reactive baseline did not finish"
    assert fo["finished"], "failover run did not finish"
    assert reactive["shed_fraction"] > 0.0, (
        "the burst no longer sheds on the reactive baseline — "
        "there is nothing for failover to save"
    )
    assert fo["shed_fraction"] == 0.0, fo["shed_by_reason"]
    assert fo["eventual_delivery_pct"] == 100.0, fo["eventual_delivery_pct"]
    assert fo["spill_pending"] == 0, f"{fo['spill_pending']} segments unsettled"
    assert result["replay_identical"], "spill/replay records diverged on rerun"
    assert fo["spilled_steps"] > 0, "failover run never spilled"
    settled = fo["spill_by_status"]
    assert set(settled) <= {"replayed", "superseded"}, settled
    return {
        "reactive_shed_fraction": reactive["shed_fraction"],
        "reactive_delivery_pct": reactive["eventual_delivery_pct"],
        "failover_shed_fraction": fo["shed_fraction"],
        "failover_delivery_pct": fo["eventual_delivery_pct"],
        "spilled_steps": fo["spilled_steps"],
        "replayed_steps": settled.get("replayed", 0),
        "superseded_steps": settled.get("superseded", 0),
        "handovers": len(fo["handovers"]),
        "catchup_s": fo["catchup_s"],
        "max_replay_latency_s": fo["max_replay_latency_s"],
        "shed_elimination_steps": result["shed_elimination_steps"],
        "spill_by_reason": fo["spill_by_reason"],
    }


def run_suite():
    result = run_failover(seed=SEED, steps=STEPS)
    assert result["ok"], "failover experiment reported not-ok"
    return failover_metrics(result)


def emit_report(metrics):
    perf = REGISTRY.snapshot()
    failover_counters = {
        k: v for k, v in perf["counters"].items()
        if k.split(".")[0] in ("failover", "overload", "pipeline")
    }
    results = {
        "failover.reactive_shed_fraction": metrics["reactive_shed_fraction"],
        "failover.shed_fraction": metrics["failover_shed_fraction"],
        "failover.eventual_delivery_pct": metrics["failover_delivery_pct"],
        "failover.catchup_s": metrics["catchup_s"],
        "failover.max_replay_latency_s": metrics["max_replay_latency_s"],
    }
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters={
            **failover_counters,
            "failover.spilled_steps": metrics["spilled_steps"],
            "failover.replayed_steps": metrics["replayed_steps"],
            "failover.superseded_steps": metrics["superseded_steps"],
            "failover.handovers": metrics["handovers"],
            "failover.shed_elimination_steps": metrics["shed_elimination_steps"],
        },
        meta={
            "bench": "bench_failover",
            "smoke": SMOKE,
            "seed": SEED,
            "steps": STEPS,
            "spill_by_reason": metrics["spill_by_reason"],
            "scenario": (
                "fig7 mix, tight buffers, seeded burst/ramp slowdown; "
                "reactive shedding vs degrade-to-disk spill/replay"
            ),
        },
    )
    return doc


def test_failover_spill_replay(benchmark):
    from conftest import print_table

    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    doc = emit_report(metrics)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "reactive_shed_fraction": metrics["reactive_shed_fraction"],
            "failover_shed_fraction": metrics["failover_shed_fraction"],
            "failover_delivery_pct": metrics["failover_delivery_pct"],
        }
    )
    print_table(
        "Failover spill/replay metrics",
        ["Metric", "Value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
         for k, v in sorted(metrics.items())],
    )
    assert metrics["failover_shed_fraction"] == 0.0
    assert metrics["failover_delivery_pct"] == 100.0


def main():
    metrics = run_suite()
    emit_report(metrics)
    for name, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"{name:28s} {value:12.3f}")
        else:
            print(f"{name:28s} {value!s:>12}")
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
