"""Chaos bench: fault injection + recovery on the Figure 7 configuration.

A seeded :class:`~repro.faults.FaultPlan` crashes one Bonds staging node
during steady state (plus a slowdown window on a CSym node for flavour)
while the management policy is live.  The run must complete end-to-end:
the crashed replica is detected within the heartbeat lease, replaced from
the spare pool by the REPLACE protocol, upstream custody redelivers the
unacked chunks, and the post-recovery bottleneck latency settles below the
SLA interval.  The same seed is run twice and the injector traces must be
identical — the determinism the whole faults subsystem is built on.

Emits ``BENCH_faults.json`` at the repo root via the shared perf-report
machinery (same schema as ``BENCH_kernels.json``): MTTR (suspicion->repair
and crash->repair), timesteps lost, duplicates delivered, availability,
and recovery protocol rounds, plus every ``faults.*`` / ``datatap.*`` /
``evpath.*`` counter the run accumulated.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks the run to 12 timesteps.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_chaos.py``.
"""

import os
from pathlib import Path

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.faults import FaultPlan
from repro.perf.registry import REGISTRY
from repro.perf.report import write_kernel_report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
STEPS = 12 if SMOKE else 40
CRASH_AT = 60.0 if SMOKE else 200.0
SEED = 11
LEASE = 5.0
SPARES = 3
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def run_chaos(seed=SEED):
    """One managed Fig-7 run with a scripted mid-run staging-node crash."""
    env = Environment()
    wl = WeakScalingWorkload(
        sim_nodes=256, staging_nodes=13 + SPARES, spare_staging_nodes=SPARES,
        output_interval=15.0, total_steps=STEPS,
    )
    pipe = PipelineBuilder(
        env, wl, seed=1, control_interval=30.0,
        fault_tolerance=True, lease_timeout=LEASE, heartbeat_interval=1.0,
    ).build()
    # Target a concrete placement: a Bonds replica that does not co-host
    # the local manager (replicas[0]'s node does).
    victim = pipe.containers["bonds"].replicas[1]
    plan = FaultPlan(seed=seed)
    plan.node_crash(CRASH_AT, victim.node.node_id)
    plan.node_slowdown(
        CRASH_AT + 40.0,
        pipe.containers["csym"].replicas[0].node.node_id,
        factor=2.0, duration=20.0,
    )
    pipe.arm_faults(plan)
    finished = pipe.run(settle=900)
    return pipe, finished


def chaos_metrics(pipe, finished):
    """Extract + sanity-check the recovery metrics from one chaos run."""
    wl = pipe.driver.workload
    assert finished, "chaos run did not complete end-to-end"

    crash_time = next(
        t for t, kind, *_ in pipe.fault_injector.trace if kind == "node_crash"
    )
    replaces = [r for r in pipe.recovery.replacements if r["type"] == "replace"]
    assert len(replaces) == 1, f"expected one REPLACE, got {pipe.recovery.replacements}"
    rec = replaces[0]
    assert rec["container"] == "bonds"
    assert rec["method"] == "spare", rec

    # Detection within the lease (scan period adds at most lease/4).
    detect_delay = rec["suspected_at"] - crash_time
    assert 0.0 < detect_delay <= 2.0 * LEASE, detect_delay

    mttr_detected = rec["completed_at"] - rec["suspected_at"]
    mttr_full = rec["completed_at"] - crash_time

    # Delivery accounting: every timestep exactly once.
    exits = [ts for _, ts, _ in pipe.end_to_end]
    duplicates = len(exits) - len(set(exits))
    lost = wl.total_steps - len(set(exits))
    assert duplicates == 0, f"{duplicates} duplicate timesteps delivered"
    assert lost == 0, f"{lost} timesteps lost"

    # Post-recovery SLA: the bottleneck returns to its achievable floor —
    # the per-chunk serial service time Figure 7's managed run converges
    # to.  The replacement replica re-enters with the crash backlog and
    # drains it at the round-robin headroom rate, so the transient shows
    # as one elevated step per RR cycle, decaying back to the floor; the
    # steady-state steps sit at the floor throughout and the application
    # is never blocked.
    series = pipe.telemetry.get("bonds", "latency_by_step")
    service = pipe.containers["bonds"].spec.cost.serial_time(wl.natoms)
    post = sorted(
        (t, v) for t, v in zip(series.times, series.values)
        if t * wl.output_interval > rec["completed_at"]
    )
    assert post, "no post-recovery timesteps observed"
    at_floor = [v for _, v in post if v < 1.1 * service]
    assert len(at_floor) >= len(post) / 2, (
        f"only {len(at_floor)}/{len(post)} post-recovery steps at the "
        f"{service:.1f}s service floor"
    )
    window = min(5, len(post))
    head = max(v for _, v in post[:window])
    tail = max(v for _, v in post[-window:])
    assert tail <= head, f"recovery transient not decaying ({head=} {tail=})"
    assert max(v for _, v in post) < 2.5 * service
    assert pipe.driver.blocked_time == 0.0
    final_latency = post[-1][1]

    nominal = wl.total_steps * wl.output_interval
    availability = 1.0 - mttr_full / nominal
    return {
        "crash_time": crash_time,
        "detect_delay": detect_delay,
        "mttr_detected": mttr_detected,
        "mttr_full": mttr_full,
        "timesteps_lost": lost,
        "duplicates": duplicates,
        "availability": availability,
        "final_bonds_latency": final_latency,
        "recovery_rounds": pipe.recovery.rounds,
        "redelivered": rec["redelivered"],
        # Fire-and-forget completions the crash swallowed: noise the kernel
        # tolerates by design, but it must be *surfaced*, not silent.
        "swallowed_faults": pipe.env.swallowed_faults,
    }


def run_suite():
    """Chaos run + replay-identity run; returns (metrics, identity_blob)."""
    pipe, finished = run_chaos()
    metrics = chaos_metrics(pipe, finished)

    # Replay: the identical seed must produce the identical event trace.
    pipe2, finished2 = run_chaos()
    assert finished2
    identity = {
        "trace_a": list(pipe.fault_injector.trace),
        "trace_b": list(pipe2.fault_injector.trace),
        "exits_a": list(pipe.end_to_end),
        "exits_b": list(pipe2.end_to_end),
    }
    assert identity["trace_a"] == identity["trace_b"], "fault trace diverged"
    assert identity["exits_a"] == identity["exits_b"], "delivery trace diverged"
    return metrics, identity


def emit_report(metrics):
    perf = REGISTRY.snapshot()
    fault_counters = {
        k: v for k, v in perf["counters"].items()
        if k.split(".")[0] in ("faults", "datatap", "evpath", "pipeline")
    }
    results = {
        "chaos.mttr_detected_s": metrics["mttr_detected"],
        "chaos.mttr_full_s": metrics["mttr_full"],
        "chaos.detect_delay_s": metrics["detect_delay"],
        "chaos.final_bonds_latency_s": metrics["final_bonds_latency"],
    }
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters={
            **fault_counters,
            "chaos.timesteps_lost": metrics["timesteps_lost"],
            "chaos.duplicates": metrics["duplicates"],
            "chaos.recovery_rounds": metrics["recovery_rounds"],
            "chaos.redelivered": metrics["redelivered"],
            "chaos.swallowed_faults": metrics["swallowed_faults"],
        },
        meta={
            "bench": "bench_chaos",
            "smoke": SMOKE,
            "seed": SEED,
            "steps": STEPS,
            "crash_at": CRASH_AT,
            "lease_timeout": LEASE,
            "availability": round(metrics["availability"], 4),
            "scenario": "fig7 + spares, one staging-node crash mid-run",
        },
    )
    return doc


def test_chaos_recovery(benchmark):
    from conftest import print_table

    metrics, identity = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    doc = emit_report(metrics)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "mttr_full": metrics["mttr_full"],
            "availability": metrics["availability"],
        }
    )
    print_table(
        "Chaos recovery metrics",
        ["Metric", "Value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
         for k, v in sorted(metrics.items())],
    )
    assert identity["trace_a"] == identity["trace_b"]


def main():
    metrics, _ = run_suite()
    emit_report(metrics)
    for name, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"{name:28s} {value:12.3f}")
        else:
            print(f"{name:28s} {value!s:>12}")
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
