"""Figure 6: microbenchmark of the resilience (D2T transaction) protocol.

x-axis: core ratio between writers and readers (e.g. 512 writers : 4
readers); y-axis: time to complete one transaction.  Paper finding: "the
solution provides good scalability" — time grows slowly (logarithmically,
via the in-group aggregation trees) with the writer count.
"""

import numpy as np
import pytest

from repro.simkernel import Environment
from repro.cluster import redsky
from repro.evpath import Messenger
from repro.transactions import TransactionManager

from conftest import print_table

RATIOS = [(64, 2), (128, 4), (256, 4), (512, 4), (1024, 8), (2048, 8)]


def run_ratio(writers, readers):
    env = Environment()
    machine = redsky(env, num_nodes=writers + readers + 1)
    messenger = Messenger(env, machine.network)
    tm = TransactionManager(env, messenger, machine.nodes[-1])
    wg = tm.build_group("writers", machine.nodes[:writers], fanout=8)
    rg = tm.build_group("readers", machine.nodes[writers:writers + readers], fanout=8)
    outcomes = []

    def proc(env):
        for _ in range(3):
            out = yield tm.run([wg, rg])
            outcomes.append(out)

    env.process(proc(env))
    env.run(until=600)
    assert all(o.committed for o in outcomes)
    return float(np.mean([o.total for o in outcomes]))


def run_sweep():
    return [(w, r, run_ratio(w, r)) for w, r in RATIOS]


def test_fig6_transaction_scalability(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "Figure 6: Resilience Protocol Overhead (RedSky model)",
        ["Writers:Readers", "Txn time (ms)"],
        [[f"{w}:{r}", f"{t * 1000:.3f}"] for w, r, t in results],
    )
    benchmark.extra_info["series"] = [
        {"writers": w, "readers": r, "seconds": t} for w, r, t in results
    ]
    times = [t for _, _, t in results]
    # All transactions complete in protocol time, not data time.
    assert all(t < 0.1 for t in times)
    # Good scalability: 32x more writers costs far less than 32x the time.
    assert times[-1] < times[0] * 8
    # But it is not free either — more participants means deeper trees.
    assert times[-1] > times[0]


def test_fig6_engine_phase_breakdown(benchmark):
    """Per-phase latency of one committed 256:4 transaction, from the
    engine's structured trace of the D2T_COMMIT spec."""
    from repro.controlplane import ControlPlaneEngine, ControlPlaneTrace

    def run():
        env = Environment()
        machine = redsky(env, num_nodes=256 + 5)
        messenger = Messenger(env, machine.network)
        engine = ControlPlaneEngine(env, trace=ControlPlaneTrace())
        tm = TransactionManager(env, messenger, machine.nodes[-1], engine=engine)
        wg = tm.build_group("writers", machine.nodes[:256], fanout=8)
        rg = tm.build_group("readers", machine.nodes[256:260], fanout=8)
        outcomes = []

        def proc(env):
            out = yield tm.run([wg, rg])
            outcomes.append(out)

        env.process(proc(env))
        env.run(until=60)
        return outcomes[0], engine.trace.of("d2t_commit")[0]

    outcome, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 6: D2T commit phase breakdown (256:4, engine trace)",
        ["Phase", "Status", "Sim ms", "Messages"],
        [[r.name, r.status, f"{r.seconds * 1000:.3f}", r.messages]
         for r in trace.rounds],
    )
    benchmark.extra_info["phase_breakdown"] = [r.as_dict() for r in trace.rounds]

    assert outcome.committed
    assert trace.status == "committed"
    assert [r.name for r in trace.rounds] == [
        "vote_request", "collect_votes", "decide", "collect_acks", "finalize",
    ]
    # The trace's phase boundaries reproduce the outcome's vote phase: the
    # decision is stamped as the decide round begins.
    vote = sum(r.seconds for r in trace.rounds
               if r.name in ("vote_request", "collect_votes"))
    assert vote == pytest.approx(outcome.vote_phase, rel=0.01)
    assert trace.total == pytest.approx(outcome.total, rel=0.01)


def test_fig6_failure_does_not_change_scaling(benchmark):
    """A crash-induced abort costs one timeout, independent of group size."""
    from repro.transactions import FailureInjector
    import repro.transactions.coordinator as coord_mod

    def run():
        results = []
        for writers in (64, 512):
            env = Environment()
            machine = redsky(env, num_nodes=writers + 5)
            messenger = Messenger(env, machine.network)
            injector = FailureInjector()
            tm = TransactionManager(env, messenger, machine.nodes[-1],
                                    injector=injector, vote_timeout=1.0)
            wg = tm.build_group("w", machine.nodes[:writers], fanout=8)
            probe = next(coord_mod._TXN_IDS)
            coord_mod._TXN_IDS = iter(range(probe + 1, probe + 100))
            injector.inject("w-p0", probe + 1, "crash")
            outcomes = []

            def proc(env):
                out = yield tm.run([wg])
                outcomes.append(out)

            env.process(proc(env))
            env.run(until=60)
            results.append((writers, outcomes[0]))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for writers, outcome in results:
        assert not outcome.committed
        assert outcome.vote_phase == pytest.approx(1.0, rel=0.1)  # = the timeout
