"""The headline claim, quantified: containers prevent application blocking.

The paper's abstract promises that containers "prevent application blocking
by taking unneeded components offline".  This bench creates the pathology on
purpose — Table II's 1024-node workload with realistically tight staging
buffers and a hopeless Bonds allocation — and runs it with management off
and on:

* **unmanaged**: back-pressure propagates from Bonds through Helper into
  the simulation's own output buffers; LAMMPS wedges mid-run and never
  finishes (the simulation would burn its allocation doing nothing);
* **managed**: the runtime grants spares, predicts the overflow, prunes
  Bonds and its dependents, and the simulation completes every timestep
  with zero blocked seconds.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_table

MIB = 2**20


def run(managed: bool, steps: int = 60):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4,
                             output_interval=15.0, total_steps=steps)
    pipe = PipelineBuilder(
        env, wl, seed=1,
        control_interval=30.0 if managed else 1e9,
        stage_buffer_bytes=480 * MIB,   # ~1 chunk of slack per stage writer
        sim_buffer_bytes=3 * 68 * MIB,  # 3 output fragments per sim writer
    ).build()
    finished = pipe.run(settle=300)
    return pipe, finished


def test_blocking_prevented_by_management(benchmark):
    def both():
        return run(False), run(True)

    (unmanaged, unmanaged_done), (managed, managed_done) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    rows = []
    for label, pipe, finished in (("unmanaged", unmanaged, unmanaged_done),
                                  ("managed", managed, managed_done)):
        rows.append([
            label,
            "yes" if finished else "NO (wedged)",
            pipe.driver.steps_emitted,
            f"{pipe.driver.total_blocked_time:.0f}",
        ])
    print_table(
        "Application blocking, 1024-node workload with tight buffers",
        ["run", "simulation finished", "steps emitted", "blocked seconds"],
        rows,
    )
    benchmark.extra_info["unmanaged_blocked"] = unmanaged.driver.total_blocked_time
    benchmark.extra_info["managed_blocked"] = managed.driver.total_blocked_time

    # Unmanaged: the application wedges and never completes its run.
    assert not unmanaged_done
    assert unmanaged.driver.is_blocked
    assert unmanaged.driver.total_blocked_time > 100.0
    assert unmanaged.driver.steps_emitted < 60

    # Managed: offline fallback keeps the application at full speed.
    assert managed_done
    assert managed.driver.steps_emitted == 60
    assert managed.driver.total_blocked_time == 0.0
    assert managed.containers["bonds"].offline


def test_managed_run_stays_on_schedule_past_the_wedge_point(benchmark):
    """At the step where the unmanaged run wedges, the managed run is still
    emitting on its nominal cadence — the spare grant at t=60 bought the
    slack, and the offline prune removed the pathology for good."""
    def both():
        return run(False), run(True)

    (unmanaged, _), (managed, _) = benchmark.pedantic(both, rounds=1, iterations=1)
    wedge_step = unmanaged.driver.steps_emitted  # first step that never emitted
    nominal = 15.0 * (wedge_step + 1)
    managed_time = managed.driver.emit_times[wedge_step]
    offline_time = next(
        t for t, l in managed.telemetry.events if "offline bonds" in l
    )
    print_table(
        "Timing at the unmanaged wedge point",
        ["wedge step", "nominal emit (s)", "managed emit (s)", "managed offline (s)"],
        [[wedge_step, f"{nominal:.0f}", f"{managed_time:.0f}", f"{offline_time:.0f}"]],
    )
    # The managed run emitted that step within one write-phase of schedule.
    assert managed_time <= nominal + 1.0
    # And every subsequent step too (no hidden stall anywhere in the run).
    for step, emit_time in enumerate(managed.driver.emit_times):
        assert emit_time <= 15.0 * (step + 1) + 1.0
