"""Figure 8: container latency, 512 simulation + 24 staging nodes (4 spare).

Paper narrative: the Bonds container converges toward the ideal rate after
the spares are granted; "there were insufficient resources but the
simulation completed before any queue overflows occurred that would have
blocked the pipeline."
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_series, print_table


def run(steps=40):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=512, staging_nodes=24, spare_staging_nodes=4,
                             output_interval=15.0, total_steps=steps)
    pipe = PipelineBuilder(env, wl, seed=1).build()
    pipe.run(settle=600)
    return pipe


def test_fig8_spares_granted_and_no_overflow(benchmark):
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    series = pipe.telemetry.get("bonds", "latency_by_step")
    print_series(
        "Figure 8: Bonds container latency by timestep (512 sim, 24 staging)",
        list(zip(series.times, series.values)),
        fmt="{:.0f}:{:.1f}s",
    )
    print_table(
        "Management actions",
        ["t (s)", "action"],
        [[f"{t:.0f}", label] for t, label in pipe.telemetry.events],
    )
    benchmark.extra_info["actions"] = pipe.global_manager.actions_taken
    benchmark.extra_info["bonds_latency"] = list(series.values)

    # Spares were granted to the bottleneck.
    assert "increase bonds +4" in pipe.global_manager.actions_taken
    assert pipe.containers["bonds"].units == 13
    # Still genuinely insufficient...
    assert pipe.managers["bonds"].shortfall(15.0) > 0
    # ...but no overflow, no blocking, no offline before the run completed.
    assert pipe.driver.blocked_time == 0.0
    assert not any(c.offline for c in pipe.containers.values())
    for container in pipe.containers.values():
        for replica in container.replicas:
            if not replica.passive:
                assert replica.queue.overflow_count == 0

    # Near-ideal: per-step latency stays within 10% of the service time
    # (the achievable minimum) for the whole run.
    service = pipe.containers["bonds"].spec.cost.serial_time(pipe.driver.workload.natoms)
    assert series.values[-1] < service * 1.10


def test_fig8_buffer_occupancy_stays_low(benchmark):
    """Queue overflow never became imminent (contrast with Figure 9)."""
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    occ = pipe.telemetry.get("bonds", "buffer_occupancy")
    print_series(
        "Figure 8: upstream buffer occupancy feeding Bonds",
        list(zip(occ.times, occ.values)),
        fmt="{:.0f}:{:.2f}",
    )
    assert max(occ.values) < 0.35  # below the offline threshold throughout
