"""Ablation: topology-aware container placement (future work, Section V).

Quantifies the paper's conjecture that placing and co-locating containers
with the interconnect topology in mind reduces simulation-to-analytics data
movement: hop-weighted bytes moved per step and measured per-chunk transfer
latency, naive vs topology-aware, on a Franklin-like torus.
"""

import pytest

from repro.simkernel import Environment
from repro.cluster import Machine
from repro.cluster.machine import torus_3d
from repro.containers.placement import (
    NaivePlacement,
    PlacementProblem,
    TopologyAwarePlacement,
)
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_table


def plan_costs(side=6, helper=4, bonds=6, csym=4):
    import numpy as np

    env = Environment()
    machine = Machine(env, num_nodes=side**3, topology=torus_3d((side, side, side)))
    # Simulation I/O nodes in one region; the staging allocation is an
    # arbitrary scatter of nodes across the torus, as batch schedulers
    # actually hand them out — first-fit over that scatter is the baseline.
    anchors = machine.nodes[:4]
    rng = np.random.default_rng(42)
    pool = [n for n in machine.nodes[4:]]
    candidates = [pool[i] for i in rng.permutation(len(pool))[:60]]
    gib = 2**30
    problem = PlacementProblem(
        stages={"helper": helper, "bonds": bonds, "csym": csym},
        edges=[
            ("sim", "helper", 0.26 * gib),
            ("helper", "bonds", 0.26 * gib),
            ("bonds", "csym", 0.37 * gib),
        ],
        candidate_nodes=candidates,
        anchors={"sim": anchors},
    )
    naive = NaivePlacement().plan(machine, problem)
    aware = TopologyAwarePlacement().plan(machine, problem)
    return naive, aware


def test_placement_reduces_hop_weighted_movement(benchmark):
    naive, aware = benchmark.pedantic(plan_costs, rounds=1, iterations=1)
    gib = 2**30
    print_table(
        "Placement ablation: hop-weighted data movement per step",
        ["planner", "GiB-hops/step", "vs naive"],
        [
            ["naive (first-fit)", f"{naive.cost / gib:.2f}", "1.00x"],
            ["topology-aware", f"{aware.cost / gib:.2f}",
             f"{aware.cost / naive.cost:.2f}x"],
        ],
    )
    benchmark.extra_info["naive_cost"] = naive.cost
    benchmark.extra_info["aware_cost"] = aware.cost
    assert aware.cost < naive.cost


def test_placement_end_to_end_latency(benchmark):
    """Measured in-pipeline: topology placement must not hurt, and on a big
    enough torus it shaves transfer hops off the pipeline latency."""

    def run(placement):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=10)
        pipe = PipelineBuilder(env, wl, seed=0, placement=placement,
                               control_interval=10_000).build()
        pipe.run(settle=300)
        series = pipe.telemetry.get("helper", "latency_by_step")
        return sum(series.values) / len(series.values), pipe

    def both():
        return run("naive"), run("topology")

    (naive_latency, naive_pipe), (aware_latency, aware_pipe) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print_table(
        "Placement ablation: mean helper stage latency",
        ["planner", "latency (s)"],
        [["naive", f"{naive_latency:.4f}"], ["topology", f"{aware_latency:.4f}"]],
    )
    assert aware_pipe.containers["csym"].completions == 10
    # Must never be worse by more than measurement noise.
    assert aware_latency <= naive_latency * 1.01
