"""Figure 10: end-to-end pipeline latency per timestep.

Same configuration as Figure 9 (1024 sim nodes).  Paper narrative: "despite
increasing the bottleneck container, the end to end latency is increasing as
data is still spending a large amount of time in the queue.  Once the spare
resources have been used and the Bonds container is moved offline, we see a
sharp decrease in the end to end latency as the bottleneck is pruned from
the data path."

Calibration note (see EXPERIMENTS.md): our Bonds cost model at 1024 nodes is
more extreme than the authors' measured component, so at the paper's exact
configuration almost nothing exits the full pipeline before the prune — the
sharp drop reproduces, the pre-drop rise is compressed.  A companion run at
640 simulation nodes, where Bonds is slow-but-flowing, exhibits the full
rising-then-sharp-drop shape of the published figure.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel

from conftest import print_series, print_table


def run_1024(steps=60):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4,
                             output_interval=15.0, total_steps=steps)
    pipe = PipelineBuilder(env, wl, seed=1).build()
    pipe.run(settle=300)
    return pipe


def run_640(steps=60):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=640, staging_nodes=24, spare_staging_nodes=4,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 5, ComputeModel.ROUND_ROBIN, upstream="helper"),
        StageConfig("csym", 6, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        StageConfig("cna", 3, ComputeModel.ROUND_ROBIN, upstream="bonds", standby=True),
    ]
    pipe = PipelineBuilder(env, wl, stages=stages, seed=1,
                           overflow_occupancy=0.25).build()
    pipe.run(settle=300)
    return pipe


def test_fig10_sharp_drop_at_paper_config(benchmark):
    pipe = benchmark.pedantic(run_1024, rounds=1, iterations=1)
    e2e = pipe.telemetry.get("pipeline", "end_to_end")
    print_series(
        "Figure 10: end-to-end latency (1024 sim nodes)",
        list(zip(e2e.times, e2e.values)),
        fmt="{:.0f}:{:.0f}s",
    )
    benchmark.extra_info["series"] = list(zip(e2e.times, e2e.values))
    offline_at = next(t for t, l in pipe.telemetry.events if "offline bonds" in l)
    before = [v for t, v in zip(e2e.times, e2e.values) if t <= offline_at]
    after = [v for t, v in zip(e2e.times, e2e.values) if t > offline_at + 30]
    assert after, "pipeline must keep exiting (to disk) after the prune"
    # Sharp decrease: post-prune latency is a tiny fraction of pre-prune
    # (or of the in-flight latency when nothing exited pre-prune).
    reference = max(before) if before else offline_at - 15.0
    assert max(after) < reference * 0.25


def test_fig10_rising_then_drop_companion(benchmark):
    """The full published shape, visible at 640 simulation nodes."""
    pipe = benchmark.pedantic(run_640, rounds=1, iterations=1)
    e2e = pipe.telemetry.get("pipeline", "end_to_end")
    print_series(
        "Figure 10 companion: end-to-end latency (640 sim nodes)",
        list(zip(e2e.times, e2e.values)),
        fmt="{:.0f}:{:.0f}s",
    )
    print_table(
        "Management actions",
        ["t (s)", "action"],
        [[f"{t:.0f}", label] for t, label in pipe.telemetry.events],
    )
    events = [l for _, l in pipe.telemetry.events]
    assert any("offline bonds" in l for l in events)
    offline_at = next(t for t, l in pipe.telemetry.events if "offline bonds" in l)
    before = [(t, v) for t, v in zip(e2e.times, e2e.values) if t <= offline_at]
    after = [v for t, v in zip(e2e.times, e2e.values) if t > offline_at + 30]
    # Rising: latency grows while data queues behind the bottleneck.
    assert len(before) >= 3
    assert before[-1][1] > before[0][1] * 1.2
    # Sharp drop once the bottleneck is pruned from the data path.
    assert after
    assert max(after) < before[-1][1] * 0.25


def test_fig10_exit_rate_recovers_after_prune(benchmark):
    """After the prune the pipeline keeps pace with the application again:
    one exit per output interval."""
    import numpy as np

    pipe = benchmark.pedantic(run_1024, rounds=1, iterations=1)
    e2e = pipe.telemetry.get("pipeline", "end_to_end")
    offline_at = next(t for t, l in pipe.telemetry.events if "offline bonds" in l)
    exit_times = [t for t in e2e.times if t > offline_at + 30]
    gaps = np.diff(exit_times)
    assert len(gaps) > 5
    assert np.median(gaps) == pytest.approx(15.0, rel=0.1)
