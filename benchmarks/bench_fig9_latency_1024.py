"""Figure 9: container latency, 1024 simulation + 24 staging nodes (4 spare).

Paper narrative: at this scale the Bonds container cannot be made to keep up
with any available resources.  The runtime grants the spares, recognizes the
impending queue overflow, and moves the Bonds and CSym containers offline —
preventing the pipeline from blocking the application.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_series, print_table


def run(steps=60):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4,
                             output_interval=15.0, total_steps=steps)
    pipe = PipelineBuilder(env, wl, seed=1).build()
    pipe.run(settle=300)
    return pipe


def test_fig9_offline_decision(benchmark):
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    occ = pipe.telemetry.get("bonds", "buffer_occupancy")
    print_series(
        "Figure 9: upstream buffer occupancy feeding Bonds",
        list(zip(occ.times, occ.values)),
        fmt="{:.0f}:{:.2f}",
    )
    print_table(
        "Management actions",
        ["t (s)", "action"],
        [[f"{t:.0f}", label] for t, label in pipe.telemetry.events],
    )
    benchmark.extra_info["actions"] = pipe.global_manager.actions_taken
    actions = pipe.global_manager.actions_taken

    # Spares first, offline only after they are exhausted.
    assert "increase bonds +4" in actions
    assert actions.index("increase bonds +4") < actions.index("offline bonds")
    # The paper: "moved the Bonds and Csym containers offline".
    assert pipe.containers["bonds"].offline
    assert pipe.containers["csym"].offline
    # Essential aggregation stays up and streams to disk.
    assert not pipe.containers["helper"].offline
    assert pipe.containers["helper"].completions == 60
    # The decision achieved its goal: the application never blocked.
    assert pipe.driver.blocked_time == 0.0


def test_fig9_occupancy_rises_until_offline(benchmark):
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    occ = pipe.telemetry.get("bonds", "buffer_occupancy")
    offline_at = next(t for t, l in pipe.telemetry.events if "offline bonds" in l)
    before = [v for t, v in zip(occ.times, occ.values) if t <= offline_at]
    # Rising trend up to the offline decision.
    assert before[-1] > before[0]
    assert before[-1] >= 0.3  # pressure was real


def test_fig9_offline_output_labeled_with_provenance(benchmark):
    """Offline data carries processing provenance so post-processing knows
    which analytics still need to run (Section III-D)."""
    pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    helper_files = [f for f in pipe.fs.files if f.name.startswith("helper.")]
    flushed = [f for f in pipe.fs.files if ".flush." in f.name]
    rows = [[f.name, f.attributes["provenance"], f.attributes.get("incomplete_pipeline")]
            for f in (helper_files[:3] + flushed[:3])]
    print_table("Offline output provenance (sample)",
                ["file", "provenance", "incomplete"], rows)
    assert helper_files
    assert all(f.attributes["provenance"] == ["helper"] for f in helper_files)
    assert all(f.attributes["incomplete_pipeline"] for f in helper_files)
