"""Figure 3: the increase-container protocol.

The paper sketches the rounds of control messages among the global manager,
container manager, and component executables.  This bench traces one
increase and prints the observed round sequence, verifying the protocol
shape: request in, per-replica spawn + metadata-exchange rounds, completion
out.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_table


def run_increase(new_nodes=2):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16, spare_staging_nodes=3,
                             output_interval=15.0, total_steps=4)
    # Keep the default 13-node stage allocation; 3 spares remain for us.
    from repro.containers.pipeline import default_stages

    builder = PipelineBuilder(env, wl, stages=default_stages(
        WeakScalingWorkload(sim_nodes=256, staging_nodes=13)),
        seed=0, control_interval=10_000)
    pipe = builder.build()

    def do(env):
        yield env.timeout(1)
        yield pipe.global_manager.increase("bonds", new_nodes)

    env.process(do(env))
    pipe.run(settle=60)
    return pipe.tracer.of("increase")[0]


def test_fig3_increase_protocol_rounds(benchmark):
    record = benchmark.pedantic(run_increase, rounds=1, iterations=1)
    print_table(
        "Figure 3: increase protocol rounds (+2 replicas)",
        ["#", "Round"],
        [[i, r] for i, r in enumerate(record.rounds)],
    )
    benchmark.extra_info["rounds"] = record.rounds
    benchmark.extra_info["messages"] = record.messages

    # Shape: request first, completion last, one spawn+ready pair per replica.
    assert record.rounds[0] == "global->local: increase request"
    assert record.rounds[-1] == "local->global: resize complete"
    spawns = [r for r in record.rounds if "spawn" in r]
    readies = [r for r in record.rounds if "ready" in r]
    assert len(spawns) == 2
    assert len(readies) == 2
    # Each new replica exchanged metadata with manager + peers + writers.
    assert record.messages["intra_container"] >= 2 * 2  # >= 2 peers each


def test_fig3_rounds_scale_with_replicas(benchmark):
    def both():
        return run_increase(1), run_increase(3)

    small, big = benchmark.pedantic(both, rounds=1, iterations=1)
    assert len(big.rounds) > len(small.rounds)
    assert big.messages["intra_container"] > small.messages["intra_container"]
