"""Figure 3: the increase-container protocol.

The paper sketches the rounds of control messages among the global manager,
container manager, and component executables.  This bench traces one
increase and prints the observed round sequence, verifying the protocol
shape: request in, per-replica spawn + metadata-exchange rounds, completion
out.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_table


def run_increase(new_nodes=2):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16, spare_staging_nodes=3,
                             output_interval=15.0, total_steps=4)
    # Keep the default 13-node stage allocation; 3 spares remain for us.
    from repro.containers.pipeline import default_stages

    builder = PipelineBuilder(env, wl, stages=default_stages(
        WeakScalingWorkload(sim_nodes=256, staging_nodes=13)),
        seed=0, control_interval=10_000)
    pipe = builder.build()

    def do(env):
        yield env.timeout(1)
        yield pipe.global_manager.increase("bonds", new_nodes)

    env.process(do(env))
    pipe.run(settle=60)
    return pipe.tracer.of("increase")[0], pipe


def test_fig3_increase_protocol_rounds(benchmark):
    record, _ = benchmark.pedantic(run_increase, rounds=1, iterations=1)
    print_table(
        "Figure 3: increase protocol rounds (+2 replicas)",
        ["#", "Round"],
        [[i, r] for i, r in enumerate(record.rounds)],
    )
    benchmark.extra_info["rounds"] = record.rounds
    benchmark.extra_info["messages"] = record.messages

    # Shape: request first, completion last, one spawn+ready pair per replica.
    assert record.rounds[0] == "global->local: increase request"
    assert record.rounds[-1] == "local->global: resize complete"
    spawns = [r for r in record.rounds if "spawn" in r]
    readies = [r for r in record.rounds if "ready" in r]
    assert len(spawns) == 2
    assert len(readies) == 2
    # Each new replica exchanged metadata with manager + peers + writers.
    assert record.messages["intra_container"] >= 2 * 2  # >= 2 peers each


def test_fig3_rounds_scale_with_replicas(benchmark):
    def both():
        return run_increase(1)[0], run_increase(3)[0]

    small, big = benchmark.pedantic(both, rounds=1, iterations=1)
    assert len(big.rounds) > len(small.rounds)
    assert big.messages["intra_container"] > small.messages["intra_container"]


def test_fig3_engine_round_latency_breakdown(benchmark):
    """The control-plane engine's structured trace of the same increase:
    per-round simulated latency and message counts, straight from the
    shared pipeline engine (no hand instrumentation)."""
    record, pipe = benchmark.pedantic(run_increase, rounds=1, iterations=1)
    trace = pipe.control_trace.of("increase")[0]
    print_table(
        "Figure 3: increase round latency breakdown (engine trace)",
        ["Round", "Status", "Sim ms", "Messages"],
        [[r.name, r.status, f"{r.seconds * 1000:.3f}", r.messages]
         for r in trace.rounds],
    )
    benchmark.extra_info["round_breakdown"] = [r.as_dict() for r in trace.rounds]

    assert trace.status == "committed"
    executed = [r.name for r in trace.rounds if r.status != "skipped"]
    assert executed == ["request", "spawn", "complete"]
    # The trace accounts for every message the legacy record counted...
    assert trace.messages == sum(record.messages.values())
    # ...and for the protocol's whole simulated duration.
    assert trace.total == pytest.approx(record.total, rel=0.25)
    # The GM-side orchestration produced its own trace around this one.
    gm_trace = pipe.control_trace.of("gm_increase")[0]
    assert [r.name for r in gm_trace.rounds] == ["allocate", "validate", "request"]
