"""Performance benchmarks of the simulation substrate itself.

Not a paper figure — these track the harness's own throughput (events,
store operations, transfers, full-pipeline runs) so regressions in the
engine show up in CI.  pytest-benchmark runs these with real repetitions,
unlike the single-shot experiment benches.
"""

import pytest

from repro.simkernel import Environment, Resource, Store
from repro.cluster import Machine
from repro import PipelineBuilder, WeakScalingWorkload


def test_event_throughput(benchmark):
    """Raw timeout scheduling: events processed per second."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(2000):
                yield env.timeout(1)

        for _ in range(5):
            env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 2000.0


def test_store_producer_consumer_throughput(benchmark):
    def run():
        env = Environment()
        store = Store(env, capacity=16)
        count = 3000

        def producer(env):
            for i in range(count):
                yield store.put(i)

        def consumer(env):
            for _ in range(count):
                yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return store.size

    assert benchmark(run) == 0


def test_resource_contention_throughput(benchmark):
    def run():
        env = Environment()
        res = Resource(env, capacity=4)

        def user(env):
            for _ in range(50):
                req = res.request()
                yield req
                yield env.timeout(0.01)
                res.release(req)

        for _ in range(20):
            env.process(user(env))
        env.run()
        return res.count

    assert benchmark(run) == 0


def test_network_transfer_throughput(benchmark):
    def run():
        env = Environment()
        machine = Machine(env, num_nodes=8)

        def sender(env, src, dst):
            for _ in range(200):
                yield machine.network.transfer(src, dst, 1e6)

        for i in range(4):
            env.process(sender(env, machine.nodes[i], machine.nodes[i + 4]))
        env.run()
        return machine.network.stats.messages

    assert benchmark(run) == 800


def test_full_pipeline_wall_time(benchmark):
    """End-to-end harness cost of one Figure-7 run (the common unit of
    experiment work)."""

    def run():
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=20)
        pipe = PipelineBuilder(env, wl, seed=1).build()
        pipe.run(settle=120)
        return pipe.containers["csym"].completions

    assert benchmark(run) == 20
