"""Figure 7: container latency, 256 simulation + 13 staging nodes, no spares.

Paper narrative reproduced here: Bonds is the bottleneck; with no spare
resources the global manager first decreases the over-provisioned LAMMPS
Helper, then increases Bonds with the stolen node(s).  Bonds latency settles
at the achievable minimum and the pipeline never blocks the application.

A managed and an unmanaged run are printed side by side; the unmanaged run
shows the latency growth the management actions prevent.
"""

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

from conftest import print_series, print_table


def run(managed=True, steps=40):
    env = Environment()
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13, spare_staging_nodes=0,
                             output_interval=15.0, total_steps=steps)
    control = 30.0 if managed else 10_000_000.0
    pipe = PipelineBuilder(env, wl, seed=1, control_interval=control).build()
    pipe.run(settle=900)
    return pipe


def test_fig7_managed_run(benchmark):
    pipe = benchmark.pedantic(run, kwargs={"managed": True}, rounds=1, iterations=1)
    series = pipe.telemetry.get("bonds", "latency_by_step")
    print_series(
        "Figure 7: Bonds container latency by timestep (managed)",
        list(zip(series.times, series.values)),
        fmt="{:.0f}:{:.1f}s",
    )
    print_table(
        "Management actions",
        ["t (s)", "action"],
        [[f"{t:.0f}", label] for t, label in pipe.telemetry.events],
    )
    benchmark.extra_info["actions"] = pipe.global_manager.actions_taken
    benchmark.extra_info["bonds_latency"] = list(series.values)

    # Shape criteria (DESIGN.md):
    actions = pipe.global_manager.actions_taken
    assert any(a.startswith("steal helper->bonds") for a in actions)
    assert pipe.containers["bonds"].units >= 5
    assert pipe.containers["helper"].units < 4
    # Bonds settles at its per-chunk service time — queue growth stopped.
    service = pipe.containers["bonds"].spec.cost.serial_time(pipe.driver.workload.natoms)
    assert series.values[-1] == pytest.approx(service, rel=0.05)
    # The donor still sustains the output rate after the decrease.
    helper_series = pipe.telemetry.get("helper", "latency_by_step")
    assert max(helper_series.values) < 15.0
    assert pipe.driver.blocked_time == 0.0


def test_fig7_unmanaged_baseline(benchmark):
    """Without management, Bonds latency grows without bound over the run."""
    pipe = benchmark.pedantic(run, kwargs={"managed": False}, rounds=1, iterations=1)
    series = pipe.telemetry.get("bonds", "latency_by_step")
    print_series(
        "Figure 7 baseline: Bonds latency by timestep (unmanaged)",
        list(zip(series.times, series.values)),
        fmt="{:.0f}:{:.1f}s",
    )
    benchmark.extra_info["bonds_latency"] = list(series.values)
    assert pipe.containers["bonds"].units == 4  # nothing intervened
    # Latency keeps climbing: the queue never drains at 4 replicas.
    assert series.values[-1] > series.values[0] * 1.5
    assert series.values[-1] > 70.0


def test_fig7_managed_beats_unmanaged(benchmark):
    def both():
        return run(managed=True), run(managed=False)

    managed, unmanaged = benchmark.pedantic(both, rounds=1, iterations=1)
    m = managed.telemetry.get("bonds", "latency_by_step").values
    u = unmanaged.telemetry.get("bonds", "latency_by_step").values
    print_table(
        "Figure 7 summary: final Bonds latency",
        ["Run", "final latency (s)", "mean latency (s)"],
        [
            ["managed", f"{m[-1]:.1f}", f"{sum(m) / len(m):.1f}"],
            ["unmanaged", f"{u[-1]:.1f}", f"{sum(u) / len(u):.1f}"],
        ],
    )
    assert m[-1] < u[-1]
