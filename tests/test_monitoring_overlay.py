"""Tests for windowed overlay monitoring and its pipeline integration."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.cluster import Machine
from repro.evpath import Messenger, OverlayTree


class TestWindowedOverlay:
    def test_windowed_delivery(self, env, machine, messenger):
        reports = []
        overlay = OverlayTree(
            env, messenger, machine.nodes[0], machine.nodes[1:9],
            on_report=reports.append, fanout=4, flush_interval=5.0,
        )

        def leaves(env):
            for i in range(4):
                yield overlay.submit(machine.nodes[1 + i], {"i": i})

        env.process(leaves(env))
        env.run(until=4.9)
        assert reports == []  # still buffered in the window
        env.run(until=12)
        assert len(reports) == 4
        overlay.stop()

    def test_aggregation_compresses(self, env, machine, messenger):
        """A summarizing aggregate turns many records into one."""
        reports = []
        overlay = OverlayTree(
            env, messenger, machine.nodes[0], machine.nodes[1:9],
            on_report=reports.append,
            aggregate=lambda records: [
                {"count": sum(r.get("count", 1) for r in records)}
            ],
            fanout=4, flush_interval=5.0,
        )

        def leaves(env):
            for i in range(8):
                yield overlay.submit(machine.nodes[1 + i], {"count": 1})

        env.process(leaves(env))
        env.run(until=20)
        overlay.stop()
        assert sum(r["count"] for r in reports) == 8
        assert len(reports) < 8  # aggregation happened

    def test_root_ingress_bounded_by_fanout(self, env):
        """Per window, the root's node receives at most `fanout` messages
        regardless of leaf count — the hot-spot reduction."""
        machine = Machine(env, num_nodes=40)
        messenger = Messenger(env, machine.network)
        reports = []
        overlay = OverlayTree(
            env, messenger, machine.nodes[0], machine.nodes[1:33],
            on_report=reports.append, fanout=4, flush_interval=10.0,
        )

        def leaves(env):
            for node in machine.nodes[1:33]:
                yield overlay.submit(node, {"n": node.node_id})

        env.process(leaves(env))
        env.run(until=50)
        overlay.stop()
        assert len(reports) == 32
        # 32 leaves but the root ingress is tree-limited.
        assert overlay.root_ingress <= 4 * 5  # fanout x windows elapsed

    def test_flush_interval_validation(self, env, machine, messenger):
        with pytest.raises(ValueError):
            OverlayTree(env, messenger, machine.nodes[0], machine.nodes[1:3],
                        on_report=lambda r: None, flush_interval=0)


class TestPipelineOverlayMonitoring:
    def _run(self, monitoring):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=25)
        pipe = PipelineBuilder(env, wl, seed=1, monitoring=monitoring).build()
        pipe.run(settle=300)
        return pipe

    def test_overlay_monitoring_still_manages(self):
        """The Figure 7 management outcome is unchanged when reports travel
        through the overlay (delayed by at most one window)."""
        pipe = self._run("overlay")
        assert any(a.startswith("steal helper->bonds")
                   for a in pipe.global_manager.actions_taken)
        assert pipe.containers["bonds"].units >= 5
        assert pipe.driver.blocked_time == 0.0

    def test_reports_arrive_through_overlay(self):
        pipe = self._run("overlay")
        assert pipe.monitoring_overlay is not None
        assert pipe.monitoring_overlay.messages > 0
        # The GM actually saw reports (snapshot has latency data).
        states = pipe.global_manager.snapshot()
        assert any(s.latency_mean is not None for s in states.values())

    def test_direct_mode_has_no_overlay(self):
        pipe = self._run("direct")
        assert pipe.monitoring_overlay is None

    def test_unknown_monitoring_rejected(self):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13)
        with pytest.raises(ValueError):
            PipelineBuilder(env, wl, monitoring="telepathy")
