"""Unit tests for the DataTap transport: buffers, writers, readers, links."""

import pytest

from repro.simkernel import Environment, SimulationError, Store
from repro.data import DataChunk
from repro.datatap import (
    BufferFull,
    DataTapLink,
    DataTapReader,
    DataTapWriter,
    PullScheduler,
    StagingBuffer,
)


def chunk(ts=0, nbytes=1000, natoms=10):
    return DataChunk(timestep=ts, nbytes=nbytes, natoms=natoms)


class TestStagingBuffer:
    def test_insert_reserves_node_memory(self, env, machine):
        node = machine.nodes[0]
        buf = StagingBuffer(env, node, capacity_bytes=5000)
        assert buf.try_insert(chunk(nbytes=2000))
        assert node.memory_used == 2000
        assert buf.occupancy == pytest.approx(0.4)

    def test_release_frees_memory(self, env, machine):
        node = machine.nodes[0]
        buf = StagingBuffer(env, node, capacity_bytes=5000)
        c = chunk(nbytes=2000)
        buf.try_insert(c)
        buf.release(c.chunk_id)
        assert node.memory_used == 0
        assert len(buf) == 0

    def test_full_buffer_rejects_nonblocking(self, env, machine):
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        assert buf.try_insert(chunk(nbytes=800))
        assert not buf.try_insert(chunk(nbytes=300))

    def test_oversized_chunk_raises(self, env, machine):
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        with pytest.raises(BufferFull):
            buf.try_insert(chunk(nbytes=2000))

    def test_blocking_insert_waits_for_space(self, env, machine):
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        first = chunk(nbytes=800)
        times = []

        def producer(env):
            yield buf.insert(first)
            times.append(env.now)
            yield buf.insert(chunk(nbytes=800))
            times.append(env.now)

        def releaser(env):
            yield env.timeout(5)
            buf.release(first.chunk_id)

        env.process(producer(env))
        env.process(releaser(env))
        env.run()
        assert times == [0.0, 5.0]

    def test_release_unknown_raises(self, env, machine):
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        with pytest.raises(SimulationError):
            buf.release(12345)

    def test_high_water_tracking(self, env, machine):
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=10000)
        c1, c2 = chunk(nbytes=3000), chunk(nbytes=4000)
        buf.try_insert(c1)
        buf.try_insert(c2)
        buf.release(c1.chunk_id)
        assert buf.high_water_bytes == 7000

    def test_oversized_raises_even_when_empty(self, env, machine):
        # BufferFull (not False) distinguishes "will never fit" from
        # "full right now" — a producer must not wait on an impossible insert.
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        with pytest.raises(BufferFull):
            buf.try_insert(chunk(nbytes=1001))
        assert len(buf) == 0 and buf.used_bytes == 0

    def test_space_waiter_wakeup_order_concurrent_producers(self, env, machine):
        # Three producers block on a full buffer; each release wakes all
        # waiters and they re-contend in arrival order, so space is granted
        # first-blocked-first-served, one producer per release.
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=1000)
        first = chunk(nbytes=900)
        buf.try_insert(first)
        admitted = []

        def producer(env, tag, start):
            yield env.timeout(start)
            mine = chunk(nbytes=600)
            yield buf.insert(mine)
            admitted.append((env.now, tag))
            # hold the space until explicitly released below
            yield env.timeout(100)

        def releaser(env):
            yield env.timeout(5)
            buf.release(first.chunk_id)

        procs = [env.process(producer(env, tag, start))
                 for tag, start in (("a", 1), ("b", 2), ("c", 3))]
        env.process(releaser(env))
        env.run(until=6)
        # only one 600 B chunk fits in the 1000 B buffer: the first blocked
        # producer wins, the later two stay parked
        assert admitted == [(5.0, "a")]
        winner = next(cid for cid in buf._chunks)
        buf.release(winner)
        env.run(until=7)
        assert [tag for _, tag in admitted] == ["a", "b"]
        winner = next(cid for cid in buf._chunks)
        buf.release(winner)
        env.run(until=8)
        assert [tag for _, tag in admitted] == ["a", "b", "c"]
        for proc in procs:
            proc.interrupt("test done")

    def test_insert_and_eviction_counters(self, env, machine):
        from repro.perf.registry import REGISTRY

        before_in = REGISTRY.counter("datatap.buffer_inserts")
        before_out = REGISTRY.counter("datatap.buffer_evictions")
        buf = StagingBuffer(env, machine.nodes[0], capacity_bytes=5000)
        c1, c2 = chunk(nbytes=1000), chunk(nbytes=2000)
        buf.try_insert(c1)
        buf.try_insert(c2)
        buf.release(c1.chunk_id)
        assert REGISTRY.counter("datatap.buffer_inserts") == before_in + 2
        assert REGISTRY.counter("datatap.buffer_evictions") == before_out + 1


def build_link(env, machine, messenger, n_readers=2, queue_capacity=4):
    link = DataTapLink(env, messenger, "test-link")
    writer = DataTapWriter(env, messenger, machine.nodes[0], name="w0")
    link.add_writer(writer)
    queues, readers = [], []
    for i in range(n_readers):
        q = Store(env, capacity=queue_capacity, name=f"q{i}")
        r = DataTapReader(env, messenger, machine.nodes[4 + i], f"r{i}", q)
        link.add_reader(r)
        queues.append(q)
        readers.append(r)
    return link, writer, readers, queues


class TestWriterReader:
    def test_round_robin_distribution(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger)
        got = {0: [], 1: []}

        def producer(env):
            for ts in range(4):
                yield writer.write(chunk(ts=ts, nbytes=1e6))
                yield env.timeout(1)

        def consumer(env, idx):
            while True:
                c = yield queues[idx].get()
                got[idx].append(c.timestep)

        env.process(producer(env))
        env.process(consumer(env, 0))
        env.process(consumer(env, 1))
        env.run(until=30)
        assert got[0] == [0, 2]
        assert got[1] == [1, 3]

    def test_write_is_asynchronous(self, env, machine, messenger):
        """The producer returns at buffering time, not delivery time."""
        link, writer, readers, queues = build_link(env, machine, messenger)
        writer_done = []

        def producer(env):
            yield writer.write(chunk(nbytes=1e9))  # ~0.6 s to move
            writer_done.append(env.now)

        env.process(producer(env))
        env.run(until=30)
        assert writer_done[0] < 0.01

    def test_pull_frees_writer_buffer(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger)

        def producer(env):
            yield writer.write(chunk(nbytes=1e6))

        env.process(producer(env))
        env.run(until=30)
        assert len(writer.buffer) == 0
        assert readers[0].chunks_pulled == 1

    def test_backpressure_limits_pulls(self, env, machine, messenger):
        """With a full output queue, chunks stay in the writer's buffer."""
        link, writer, readers, queues = build_link(
            env, machine, messenger, n_readers=1, queue_capacity=1
        )

        def producer(env):
            for ts in range(5):
                yield writer.write(chunk(ts=ts, nbytes=1e6))

        env.process(producer(env))
        env.run(until=10)
        # 1 in the queue, 1 reserved/in-flight at most; the rest buffered.
        assert len(writer.buffer) >= 3

    def test_pause_stops_metadata_flow(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger, n_readers=1)

        def scenario(env):
            yield link.pause_writers()
            yield writer.write(chunk(ts=0, nbytes=1e6))
            yield env.timeout(5)
            assert queues[0].size == 0  # nothing delivered while paused
            assert writer.backlog == 1
            yield link.resume_writers()
            yield env.timeout(5)
            assert queues[0].size == 1

        env.process(scenario(env))
        env.run(until=30)

    def test_pause_waits_for_inflight_metadata(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger, n_readers=1)
        done = []

        def scenario(env):
            yield writer.write(chunk(nbytes=1e6))
            elapsed = yield link.pause_writers()
            done.append(elapsed)

        env.process(scenario(env))
        env.run(until=30)
        # flush delay is charged even when metadata already drained
        assert done[0] >= writer.pause_flush_delay

    def test_write_without_link_raises(self, env, machine, messenger):
        writer = DataTapWriter(env, messenger, machine.nodes[0], name="orphan")

        def proc(env):
            yield writer.write(chunk())

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()


class TestLinkMembership:
    def test_remove_reader_requires_pause(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger)
        with pytest.raises(SimulationError):
            link.remove_reader(readers[0])

    def test_remove_reader_redispatches(self, env, machine, messenger):
        link, writer, readers, queues = build_link(
            env, machine, messenger, n_readers=2, queue_capacity=1
        )
        total = 6

        def producer(env):
            for ts in range(total):
                yield writer.write(chunk(ts=ts, nbytes=1e6))

        consumed = []

        def consumer(env, idx):
            while True:
                c = yield queues[idx].get()
                consumed.append(c.timestep)
                yield env.timeout(2)

        def controller(env):
            yield env.timeout(3)
            yield link.pause_writers()
            link.remove_reader(readers[1])
            yield link.resume_writers()

        env.process(producer(env))
        env.process(consumer(env, 0))
        env.process(consumer(env, 1))
        env.process(controller(env))
        env.run(until=60)
        assert sorted(consumed) == list(range(total))  # no timestep lost

    def test_remove_last_reader_with_pending_raises(self, env, machine, messenger):
        link, writer, readers, queues = build_link(
            env, machine, messenger, n_readers=1, queue_capacity=1
        )

        def scenario(env):
            for ts in range(4):
                yield writer.write(chunk(ts=ts, nbytes=1e6))
            yield env.timeout(1)
            yield link.pause_writers()
            link.remove_reader(readers[0])

        env.process(scenario(env))
        with pytest.raises(SimulationError, match="strand"):
            env.run(until=30)

    def test_duplicate_membership_rejected(self, env, machine, messenger):
        link, writer, readers, queues = build_link(env, machine, messenger)
        with pytest.raises(SimulationError):
            link.add_writer(writer)
        with pytest.raises(SimulationError):
            link.add_reader(readers[0])

    def test_drain_buffer_for_offline_flush(self, env, machine, messenger):
        link, writer, readers, queues = build_link(
            env, machine, messenger, n_readers=1, queue_capacity=1
        )

        def scenario(env):
            for ts in range(5):
                yield writer.write(chunk(ts=ts, nbytes=1e6))
            yield env.timeout(1)
            yield link.pause_writers()
            drained = writer.drain_buffer()
            assert len(drained) >= 3
            assert len(writer.buffer) == 0
            assert writer.backlog == 0

        env.process(scenario(env))
        env.run(until=30)


class TestPullScheduler:
    def test_concurrency_bound(self, env):
        sched = PullScheduler(env, max_concurrent_pulls=2)
        active = []
        peak = [0]

        def puller(env):
            token = yield sched.admit()
            active.append(1)
            peak[0] = max(peak[0], len(active))
            yield env.timeout(1)
            active.pop()
            sched.release(token)

        for _ in range(6):
            env.process(puller(env))
        env.run()
        assert peak[0] == 2
        assert sched.pulls_admitted == 6

    def test_defer_during_output_phase(self, env):
        sched = PullScheduler(env, max_concurrent_pulls=4, defer_during_output=True)
        admitted = []

        def puller(env):
            yield env.timeout(1)
            token = yield sched.admit()
            admitted.append(env.now)
            sched.release(token)

        def app(env):
            sched.output_phase_begin()
            yield env.timeout(5)
            sched.output_phase_end()

        env.process(app(env))
        env.process(puller(env))
        env.run()
        assert admitted == [5.0]

    def test_unbalanced_phase_end_raises(self, env):
        sched = PullScheduler(env)
        with pytest.raises(SimulationError):
            sched.output_phase_end()

    def test_nested_output_phases(self, env):
        sched = PullScheduler(env, defer_during_output=True)
        sched.output_phase_begin()
        sched.output_phase_begin()
        sched.output_phase_end()
        assert sched._phase_clear is not None
        sched.output_phase_end()
        assert sched._phase_clear is None
