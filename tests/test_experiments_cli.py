"""Tests for the experiment runner API, renderer, and CLI."""

import json

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import format_table, render, sparkline
from repro.experiments.__main__ import main


class TestRunners:
    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "overload", "predictive",
            "failover", "dst", "fleet", "specs",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_table_runners_shape(self):
        t1 = run_experiment("table1")
        assert {r["component"] for r in t1["rows"]} >= {"helper", "bonds", "csym", "cna"}
        t2 = run_experiment("table2")
        assert [r["atoms"] for r in t2["rows"]] == [8_819_989, 17_639_979, 35_279_958]

    def test_fig4_runner_series(self):
        result = run_experiment("fig4", sizes=(1, 4))
        totals = [row["total_seconds"] for row in result["series"]]
        assert totals[1] > totals[0]

    def test_fig5_runner_series(self):
        result = run_experiment("fig5", sizes=(1, 2))
        for row in result["series"]:
            assert row["writer_pause_seconds"] > row["manager_seconds"]

    def test_fig6_runner_series(self):
        result = run_experiment("fig6", ratios=((16, 2), (64, 2)), repeats=1)
        assert all(row["committed"] for row in result["series"])

    def test_fig7_runner_json_serializable(self):
        result = run_experiment("fig7", steps=15, include_baseline=False)
        blob = json.dumps(result)
        assert "steal helper->bonds" in blob

    def test_fig9_runner_offline(self):
        result = run_experiment("fig9", steps=50)
        assert result["managed"]["containers"]["bonds"]["offline"]
        assert result["managed"]["blocked_seconds"] == 0.0


class TestReport:
    def test_sparkline_scales(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series(self):
        assert set(sparkline([70.0, 70.0 + 1e-9, 70.0])) == {"▁"}

    def test_sparkline_resamples_long_series(self):
        assert len(sparkline(list(range(500)), width=40)) == 40

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_rows_result(self):
        text = render(run_experiment("table1"))
        assert "table1" in text and "bonds" in text

    def test_render_pipeline_result(self):
        result = run_experiment("fig7", steps=12, include_baseline=False)
        text = render(result)
        assert "managed" in text
        assert "container" in text


class TestCLI:
    def test_single_experiment(self, capsys):
        assert main(["table2", "--quiet"]) == 0

    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert main(["table1", "--json", str(out), "--quiet"]) == 0
        data = json.loads(out.read_text())
        assert "table1" in data

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_renders_to_stdout(self, capsys):
        main(["table2"])
        captured = capsys.readouterr()
        assert "269.2" in captured.out

    def test_list_presets(self, capsys):
        assert main(["--list-presets"]) == 0
        captured = capsys.readouterr()
        for name in ("fig7", "overload", "s3d"):
            assert name in captured.out

    def test_no_experiments_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_specs_experiment_validates_bundle(self, capsys):
        assert main(["specs", "--quiet"]) == 0

    def test_specs_experiment_flags_a_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: bad\nstages:\n- {name: a, units: 0}\n")
        assert main(["specs", "--spec", str(bad), "--quiet"]) == 1
