"""Tests for offline post-processing driven by provenance attributes."""

import numpy as np
import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload, write_bp, read_bp
from repro.adios.filesystem import FileRecord
from repro.lammps import hex_lattice
from repro.postprocess import (
    PIPELINE_ORDER,
    analysis_backlog,
    complete_bp_file,
    complete_directory,
    remaining_actions,
)
from repro.smartpointer.cna import CNA_TRIANGULAR


class TestRemainingActions:
    def test_nothing_applied(self):
        assert remaining_actions([]) == list(PIPELINE_ORDER)

    def test_helper_only(self):
        assert remaining_actions(["helper"]) == ["bonds", "csym", "cna"]

    def test_fully_processed(self):
        assert remaining_actions(["helper", "bonds", "csym", "cna"]) == []

    def test_cna_branch_covers_csym(self):
        # Post-crack data skipped csym entirely; nothing remains.
        assert remaining_actions(["helper", "bonds", "cna"]) == []

    def test_csym_branch_leaves_cna(self):
        assert remaining_actions(["helper", "bonds", "csym"]) == ["cna"]

    def test_unknown_entries_ignored(self):
        assert remaining_actions(["helper", "viz"]) == ["bonds", "csym", "cna"]


class TestBacklog:
    def _record(self, name, ts, provenance):
        return FileRecord(name=name, nbytes=1, written_at=0.0, writer_node=0,
                          attributes={"timestep": ts, "provenance": provenance})

    def test_backlog_sorted_by_timestep(self):
        records = [
            self._record("b", 2, ["helper"]),
            self._record("a", 0, ["helper", "bonds"]),
        ]
        backlog = analysis_backlog(records)
        assert [e.timestep for e in backlog] == [0, 2]
        assert backlog[0].remaining == ["csym", "cna"]
        assert backlog[1].remaining == ["bonds", "csym", "cna"]

    def test_most_processed_duplicate_wins(self):
        records = [
            self._record("raw", 5, ["helper"]),
            self._record("done", 5, ["helper", "bonds", "csym"]),
        ]
        backlog = analysis_backlog(records)
        assert len(backlog) == 1
        assert backlog[0].name == "done"

    def test_records_without_timestep_skipped(self):
        record = FileRecord(name="x", nbytes=1, written_at=0, writer_node=0,
                            attributes={})
        assert analysis_backlog([record]) == []

    def test_backlog_from_real_offline_run(self):
        """End-to-end: the Figure 9 run's file system yields a coherent
        backlog covering every pruned timestep."""
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24,
                                 spare_staging_nodes=4, output_interval=15.0,
                                 total_steps=40)
        pipe = PipelineBuilder(env, wl, seed=1).build()
        pipe.run(settle=300)
        backlog = analysis_backlog(pipe.fs.files)
        assert backlog
        for entry in backlog:
            # Helper ran on everything it wrote; bonds/csym/cna remain.
            assert "bonds" in entry.remaining or entry.remaining == []


class TestCompleteBPFiles:
    def _write_raw(self, path, nx=10, ny=8):
        pos, _ = hex_lattice(nx, ny)
        write_bp(path, {"positions": pos},
                 {"provenance": ["helper"], "timestep": 3})
        return pos

    def test_complete_runs_remaining_kernels(self, tmp_path):
        path = tmp_path / "helper.ts3.bp"
        pos = self._write_raw(path)
        out, applied = complete_bp_file(path)
        assert applied == ["bonds", "csym", "cna"]
        variables, attributes = read_bp(out)
        assert attributes["provenance"] == ["helper", "bonds", "csym", "cna"]
        assert attributes["completed_offline"]
        assert "bonds" in variables and "csp" in variables and "cna_labels" in variables
        # The kernels actually ran: interior atoms labeled crystalline.
        assert (variables["cna_labels"] == CNA_TRIANGULAR).sum() > 0
        assert variables["csp"].shape == (len(pos),)

    def test_complete_noop_for_finished_file(self, tmp_path):
        path = tmp_path / "done.bp"
        pos, _ = hex_lattice(6, 6)
        write_bp(path, {"positions": pos},
                 {"provenance": list(PIPELINE_ORDER), "timestep": 0})
        out, applied = complete_bp_file(path)
        assert applied == []
        assert out == path

    def test_complete_requires_coordinates(self, tmp_path):
        path = tmp_path / "odd.bp"
        write_bp(path, {"blob": np.zeros(10)}, {"provenance": ["helper"]})
        with pytest.raises(ValueError, match="coordinates"):
            complete_bp_file(path)

    def test_complete_accepts_xy_columns(self, tmp_path):
        pos, _ = hex_lattice(6, 6)
        path = tmp_path / "xy.bp"
        write_bp(path, {"x": pos[:, 0], "y": pos[:, 1]},
                 {"provenance": ["helper"], "timestep": 0})
        out, applied = complete_bp_file(path)
        assert "bonds" in applied

    def test_complete_directory_batch(self, tmp_path):
        for i in range(3):
            self._write_raw(tmp_path / f"helper.ts{i}.bp", nx=6, ny=6)
        pos, _ = hex_lattice(4, 4)
        write_bp(tmp_path / "finished.bp", {"positions": pos},
                 {"provenance": list(PIPELINE_ORDER), "timestep": 9})
        results = complete_directory(tmp_path)
        assert len(results) == 3
        # Re-running finds nothing left to do (outputs are .complete.bp).
        assert complete_directory(tmp_path) == []
