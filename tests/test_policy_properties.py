"""Property-based tests of the management policy's safety invariants.

Whatever the metrics look like, the policy must never: steal more than a
donor's headroom, grant more than the spare pool holds, take an essential
container offline, or touch offline/standby containers.
"""

from hypothesis import given, settings, strategies as st

from repro.containers.policy import (
    ContainerState,
    Increase,
    LatencyPolicy,
    Offline,
    QueueDerivativePolicy,
    Steal,
)

SLA = 15.0


@st.composite
def container_states(draw):
    names = draw(st.lists(
        st.sampled_from(["helper", "bonds", "csym", "cna", "viz", "track"]),
        min_size=1, max_size=6, unique=True,
    ))
    states = {}
    for name in names:
        units = draw(st.integers(0, 16))
        latency = draw(st.one_of(st.none(), st.floats(0.1, 1000)))
        occupancy = draw(st.floats(0, 1))
        samples = draw(st.lists(
            st.tuples(st.floats(0, 500), st.floats(0, 1)), max_size=6,
        ))
        samples = tuple(sorted(samples))
        states[name] = ContainerState(
            name=name,
            units=units,
            latency_mean=latency,
            latency_est=latency,
            queued=draw(st.integers(0, 50)),
            queue_samples=tuple(
                (t, float(draw(st.integers(0, 50)))) for t, _ in samples
            ),
            occupancy_samples=samples,
            buffer_occupancy=occupancy,
            shortfall=draw(st.integers(0, 20)),
            headroom=draw(st.integers(0, 8)),
            essential=draw(st.booleans()),
            offline=draw(st.booleans()),
            active=draw(st.booleans()),
        )
    return states


@given(
    states=container_states(),
    spares=st.integers(0, 10),
    now=st.floats(0, 1000),
)
@settings(max_examples=200, deadline=None)
def test_latency_policy_safety(states, spares, now):
    policy = LatencyPolicy()
    actions = policy.decide(states, spares, SLA, now=now, horizon=120)
    _check_safety(actions, states, spares)


@given(
    states=container_states(),
    spares=st.integers(0, 10),
    now=st.floats(0, 1000),
)
@settings(max_examples=200, deadline=None)
def test_queue_policy_safety(states, spares, now):
    policy = QueueDerivativePolicy()
    actions = policy.decide(states, spares, SLA, now=now, horizon=120)
    _check_safety(actions, states, spares)


def _check_safety(actions, states, spares):
    granted = 0
    for action in actions:
        if isinstance(action, Increase):
            granted += action.count
            assert action.count > 0
            target = states[action.container]
            assert not target.offline and target.active and target.units > 0
        elif isinstance(action, Steal):
            donor = states[action.donor]
            recipient = states[action.recipient]
            assert action.count > 0
            assert action.count <= donor.headroom
            assert action.donor != action.recipient
            assert not donor.offline and donor.active
            assert not recipient.offline and recipient.active
        elif isinstance(action, Offline):
            target = states[action.container]
            assert not target.essential
            assert not target.offline and target.active
    assert granted <= spares
    # At most one offline decision per round, and only as a last resort
    # (never alongside a grant to the same container).
    offline_targets = [a.container for a in actions if isinstance(a, Offline)]
    assert len(offline_targets) <= 1
    for target in offline_targets:
        assert not any(
            isinstance(a, (Increase, Steal)) and getattr(a, "container", None) == target
            for a in actions
        )


@given(states=container_states(), spares=st.integers(0, 10))
@settings(max_examples=100, deadline=None)
def test_policy_is_deterministic(states, spares):
    policy = LatencyPolicy()
    first = policy.decide(states, spares, SLA, now=100, horizon=120)
    second = policy.decide(states, spares, SLA, now=100, horizon=120)
    assert first == second


@given(states=container_states())
@settings(max_examples=100, deadline=None)
def test_no_spares_no_donors_no_growth(states):
    """With zero spares and zero headroom anywhere, the only possible
    actions are offline decisions."""
    starved = {
        name: ContainerState(**{**s.__dict__, "headroom": 0})
        for name, s in states.items()
    }
    policy = LatencyPolicy()
    actions = policy.decide(starved, 0, SLA, now=100, horizon=120)
    assert all(isinstance(a, Offline) for a in actions)
