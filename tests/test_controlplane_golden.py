"""Golden-trace regression tests for the control protocols.

``tests/data/golden_traces.json`` holds the exact round sequences, message
counts, and cost-breakdown categories of each control protocol as recorded
from the pre-control-plane (hand-written handler) implementation.  These
tests re-run the same deterministic scenarios and assert the protocols still
produce them round-for-round, so the declarative engine port cannot silently
change the Figure 3-6 protocol shapes.
"""

import json
from pathlib import Path

import pytest

from repro.simkernel import Environment
from repro import PipelineBuilder, WeakScalingWorkload

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_traces.json").read_text()
)


def build(env, steps=4, spare=3, **kwargs):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13 + spare,
                             spare_staging_nodes=spare,
                             output_interval=15.0, total_steps=steps)
    kwargs.setdefault("control_interval", 10_000)
    return PipelineBuilder(env, wl, seed=0, **kwargs).build()


def assert_matches_golden(record, golden):
    """Round-for-round identity with the pre-refactor trace."""
    assert record.operation == golden["operation"]
    assert record.container == golden["container"]
    assert record.amount == golden["amount"]
    assert list(record.rounds) == golden["rounds"]
    assert dict(record.messages) == golden["messages"]
    assert sorted(record.breakdown) == golden["breakdown_keys"]
    # Simulated protocol time: identical costs are charged, so the total
    # must match closely (small tolerance for event-ordering jitter).
    assert record.total == pytest.approx(golden["total"], rel=0.25)


class TestContainerProtocolGoldens:
    @pytest.mark.parametrize("count,key", [(1, "increase_1"), (2, "increase_2")])
    def test_increase(self, count, key):
        env = Environment()
        pipe = build(env, steps=4, spare=3)

        def do(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", count)

        env.process(do(env))
        pipe.run(settle=60)
        assert_matches_golden(pipe.tracer.of("increase")[0], GOLDEN[key])

    def test_decrease(self):
        env = Environment()
        pipe = build(env, steps=8, spare=0)

        def do(env):
            yield env.timeout(40)
            yield pipe.global_manager.decrease("bonds", 2)

        env.process(do(env))
        pipe.run(settle=120)
        assert_matches_golden(pipe.tracer.of("decrease")[0], GOLDEN["decrease_2"])

    def test_offline(self):
        env = Environment()
        pipe = build(env, steps=6, spare=0)

        def do(env):
            yield env.timeout(30)
            yield pipe.global_manager.take_offline("csym")

        env.process(do(env))
        pipe.run(settle=120)
        assert_matches_golden(pipe.tracer.of("offline")[0], GOLDEN["offline_csym"])

    def test_replace(self):
        pipe = _run_replace_scenario()
        assert_matches_golden(pipe.tracer.of("replace")[0], GOLDEN["replace_bonds"])


def _run_replace_scenario():
    """The deterministic crash-recovery run behind the REPLACE goldens."""
    from repro.faults import FaultPlan

    env = Environment()
    pipe = build(env, steps=10, spare=2, fault_tolerance=True,
                 lease_timeout=5.0, heartbeat_interval=1.0)
    victim = pipe.containers["bonds"].replicas[1]
    plan = FaultPlan(seed=1)
    plan.node_crash(30.0, victim.node.node_id)
    pipe.arm_faults(plan)
    pipe.run(settle=200)
    return pipe


def _engine_ladder(pipe):
    """Engine-level trace summary of every protocol the run executed."""
    return [
        {
            "protocol": t.protocol,
            "subject": t.subject,
            "status": t.status,
            "abort_reason": t.abort_reason,
            "compensated": list(t.compensated),
            "rounds": [[r.name, r.status, r.messages] for r in t.rounds],
            "total": t.total,
        }
        for t in pipe.control_trace.records
    ]


class TestRecoveryLadderGolden:
    """The full REPLACE recovery ladder — GM_REPLACE driving REPLACE — as
    seen by the control-plane engine, pinned round-for-round."""

    def test_ladder_matches_golden(self):
        pipe = _run_replace_scenario()
        ladder = _engine_ladder(pipe)
        golden = GOLDEN["replace_ladder_engine"]
        assert len(ladder) == len(golden)
        for got, want in zip(ladder, golden):
            assert got["protocol"] == want["protocol"]
            assert got["subject"] == want["subject"]
            assert got["status"] == want["status"]
            assert got["abort_reason"] == want["abort_reason"]
            assert got["compensated"] == want["compensated"]
            assert got["rounds"] == want["rounds"]
            assert got["total"] == pytest.approx(want["total"], rel=0.25)

    def test_identical_across_three_default_runs(self):
        """The default tie-breaker is deterministic: three fresh runs of the
        recovery scenario must produce byte-identical ladders and delivery
        records — the anchor the seeded-shuffle exploration deviates from."""
        ladders, exits = [], []
        for _ in range(3):
            pipe = _run_replace_scenario()
            ladders.append(_engine_ladder(pipe))
            exits.append(list(pipe.end_to_end))
        assert ladders[0] == ladders[1] == ladders[2]
        assert exits[0] == exits[1] == exits[2]


def _run_brownout_scenario():
    """The deterministic overload run behind the brownout-ladder goldens:
    a seeded burst saturates the stages, the ladder escalates through
    steal/stride/offline and unwinds every rung with hysteresis."""
    from repro.overload.scenario import build_overload_pipeline, overload_burst_plan

    env = Environment()
    pipe = build_overload_pipeline(env, steps=12, seed=3, managed=True)
    pipe.arm_faults(overload_burst_plan(3, pipe))
    pipe.run(settle=600)
    return pipe


def _brownout_ladder(pipe):
    return [t for t in _engine_ladder(pipe)
            if t["protocol"] in ("brownout_escalate", "brownout_recover")]


class TestBrownoutLadderGolden:
    """The brownout escalate/de-escalate protocol ladders, pinned
    round-for-round like the REPLACE recovery ladder above."""

    def test_ladder_matches_golden(self):
        pipe = _run_brownout_scenario()
        ladder = _brownout_ladder(pipe)
        golden = GOLDEN["brownout_ladder_engine"]
        assert len(ladder) == len(golden)
        for got, want in zip(ladder, golden):
            assert got["protocol"] == want["protocol"]
            assert got["subject"] == want["subject"]
            assert got["status"] == want["status"]
            assert got["abort_reason"] == want["abort_reason"]
            assert got["compensated"] == want["compensated"]
            assert got["rounds"] == want["rounds"]
            assert got["total"] == pytest.approx(want["total"], rel=0.25)
        # both paths are exercised: escalations and their unwinds
        protocols = [t["protocol"] for t in ladder]
        assert "brownout_escalate" in protocols
        assert "brownout_recover" in protocols

    def test_identical_across_three_runs(self):
        ladders, degradations = [], []
        for _ in range(3):
            pipe = _run_brownout_scenario()
            ladders.append(_brownout_ladder(pipe))
            degradations.append(pipe.degradation.as_dicts())
        assert ladders[0] == ladders[1] == ladders[2]
        assert degradations[0] == degradations[1] == degradations[2]


def _run_predictive_brownout_scenario():
    """The same seeded overload run as :func:`_run_brownout_scenario`, but
    built from the ``predictive`` preset: the forecaster stack drives the
    proactive ladder, premature-recovery backoff and shed-guided unwind,
    so the protocol sequence differs from the reactive golden — and is
    pinned separately here."""
    from repro.containers.presets import build_predictive_pipeline
    from repro.overload.scenario import overload_burst_plan

    env = Environment()
    pipe = build_predictive_pipeline(env, steps=12, seed=3)
    pipe.arm_faults(overload_burst_plan(3, pipe))
    pipe.run(settle=600)
    return pipe


class TestPredictiveBrownoutLadderGolden:
    """The proactive (``mode: predictive``) escalate/de-escalate ladders,
    pinned round-for-round against their own golden."""

    def test_ladder_matches_golden(self):
        pipe = _run_predictive_brownout_scenario()
        ladder = _brownout_ladder(pipe)
        golden = GOLDEN["brownout_ladder_engine_predictive"]
        assert len(ladder) == len(golden)
        for got, want in zip(ladder, golden):
            assert got["protocol"] == want["protocol"]
            assert got["subject"] == want["subject"]
            assert got["status"] == want["status"]
            assert got["abort_reason"] == want["abort_reason"]
            assert got["compensated"] == want["compensated"]
            assert got["rounds"] == want["rounds"]
            assert got["total"] == pytest.approx(want["total"], rel=0.25)
        protocols = [t["protocol"] for t in ladder]
        assert "brownout_escalate" in protocols
        assert "brownout_recover" in protocols

    def test_identical_across_three_runs(self):
        ladders, degradations, analytics = [], [], []
        for _ in range(3):
            pipe = _run_predictive_brownout_scenario()
            ladders.append(_brownout_ladder(pipe))
            degradations.append(pipe.degradation.as_dicts())
            analytics.append(pipe.analytics.as_dict())
        assert ladders[0] == ladders[1] == ladders[2]
        assert degradations[0] == degradations[1] == degradations[2]
        assert analytics[0] == analytics[1] == analytics[2]

    def test_predictive_ladder_diverges_from_reactive(self):
        """The two goldens must not silently collapse into one another —
        if they ever match, the predictive path stopped doing anything."""
        assert (GOLDEN["brownout_ladder_engine_predictive"]
                != GOLDEN["brownout_ladder_engine"])


class TestD2TGolden:
    def test_commit_message_count_and_phases(self):
        """One committed 16:4 transaction: same wire messages, same phases."""
        from repro.cluster import Machine
        from repro.evpath import Messenger
        from repro.transactions import TransactionManager

        golden = GOLDEN["d2t_16_4"]
        env = Environment()
        machine = Machine(env, num_nodes=21)
        messenger = Messenger(env, machine.network)
        tm = TransactionManager(env, messenger, machine.nodes[-1])
        wg = tm.build_group("w", machine.nodes[:16], fanout=4)
        rg = tm.build_group("r", machine.nodes[16:20], fanout=4)
        out = {}

        def proc(env):
            o = yield tm.run([wg, rg])
            out["o"] = o

        env.process(proc(env))
        env.run(until=60)
        o = out["o"]
        assert o.committed == golden["committed"]
        assert o.acks_complete == golden["acks_complete"]
        assert messenger.messages_sent == golden["messages_sent"]
        assert o.vote_phase == pytest.approx(golden["vote_phase"], rel=0.25)
        assert o.total == pytest.approx(golden["total"], rel=0.25)
