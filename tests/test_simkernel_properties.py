"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_clock_monotonic_and_events_in_order(delays):
    """Events always process in timestamp order regardless of creation order."""
    env = Environment()
    fired = []

    def watcher(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(watcher(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=40),
    capacity=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_store_fifo_and_conservation(items, capacity):
    """Every item put is got exactly once, in FIFO order, under any capacity."""
    env = Environment()
    store = Store(env, capacity=capacity)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            got.append(value)
            yield env.timeout(0.1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items
    assert store.size == 0
    assert store.high_water <= capacity


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=5, allow_nan=False), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Concurrent users never exceed capacity; all requests eventually grant."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    granted = []
    max_seen = [0]

    def user(env, hold):
        req = res.request()
        yield req
        granted.append(hold)
        max_seen[0] = max(max_seen[0], res.count)
        assert res.count <= capacity
        yield env.timeout(hold)
        res.release(req)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert len(granted) == len(holds)
    assert max_seen[0] <= capacity
    assert res.count == 0


@given(
    n_reserve=st.integers(min_value=0, max_value=8),
    n_put=st.integers(min_value=0, max_value=8),
    capacity=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_reservations_conserve_capacity(n_reserve, n_put, capacity):
    """items + reservations never exceed capacity; fulfilled items all arrive."""
    env = Environment()
    store = Store(env, capacity=capacity)
    fulfilled = []

    def reserver(env, index):
        res = yield store.reserve()
        assert len(store.items) + store.reserved <= capacity
        yield env.timeout(0.5)
        store.fulfill(res, ("r", index))

    def putter(env, index):
        yield store.put(("p", index))
        assert len(store.items) + store.reserved <= capacity

    def drainer(env):
        for _ in range(n_reserve + n_put):
            item = yield store.get()
            fulfilled.append(item)
            yield env.timeout(0.2)

    for i in range(n_reserve):
        env.process(reserver(env, i))
    for i in range(n_put):
        env.process(putter(env, i))
    env.process(drainer(env))
    env.run()
    assert len(fulfilled) == n_reserve + n_put
    assert store.reserved == 0
