"""Tests for the crack experiment, Table II workloads, and the DES driver."""

import numpy as np
import pytest

from repro.simkernel import Environment, Store
from repro.evpath import Messenger
from repro.cluster import Machine
from repro.datatap import DataTapLink, DataTapReader, DataTapWriter
from repro.lammps import (
    CrackExperiment,
    LammpsDriver,
    TABLE_II,
    WeakScalingWorkload,
    atoms_for_nodes,
    broken_bond_fraction,
)
from repro.lammps.crack import BOND_CUTOFF, reference_bonds
from repro.lammps.workload import BYTES_PER_ATOM, output_bytes_for_atoms


class TestCrackExperiment:
    def test_unstrained_plate_has_no_broken_bonds(self):
        exp = CrackExperiment(nx=24, ny=14, md_steps_per_epoch=20)
        frac = broken_bond_fraction(exp.system.positions, exp.reference)
        assert frac == 0.0

    def test_crack_forms_under_tension(self):
        exp = CrackExperiment(nx=30, ny=18, md_steps_per_epoch=40)
        cracked_epoch = None
        for i, frame in enumerate(exp.frames(max_epochs=40)):
            if frame.cracked:
                cracked_epoch = i
        assert cracked_epoch is not None
        # Physically plausible: a notched LJ plate fails at a few % strain,
        # far below the ~15%+ an un-notched lattice would need.
        assert 0.02 < exp.strain < 0.30

    def test_broken_fraction_monotone_ish(self):
        """Broken-bond fraction never decreases dramatically once cracked."""
        exp = CrackExperiment(nx=24, ny=16, md_steps_per_epoch=30)
        fracs = [frame.broken_fraction for frame in exp.run(16)]
        assert fracs[-1] >= fracs[0]

    def test_reference_bonds_reasonable(self):
        exp = CrackExperiment(nx=20, ny=12)
        n = exp.system.natoms
        bonds_per_atom = 2 * len(exp.reference) / n
        assert 4.0 < bonds_per_atom < 6.0  # interior 6, edges fewer

    def test_validation(self):
        with pytest.raises(ValueError):
            CrackExperiment(notch_fraction=1.5)
        with pytest.raises(ValueError):
            CrackExperiment(strain_per_epoch=0)


class TestTable2Workloads:
    def test_exact_table_rows(self):
        assert atoms_for_nodes(256) == 8_819_989
        assert atoms_for_nodes(512) == 17_639_979
        assert atoms_for_nodes(1024) == 35_279_958

    def test_table_sizes_in_bytes(self):
        for nodes, (atoms, nbytes) in TABLE_II.items():
            assert output_bytes_for_atoms(atoms) == pytest.approx(nbytes, rel=0.01)

    def test_bytes_per_atom_is_eight(self):
        assert BYTES_PER_ATOM == pytest.approx(8.0, rel=0.01)

    def test_interpolation_is_linear(self):
        a128 = atoms_for_nodes(128)
        assert a128 == pytest.approx(atoms_for_nodes(256) / 2, rel=0.01)

    def test_workload_properties(self):
        wl = WeakScalingWorkload(sim_nodes=512, staging_nodes=24, spare_staging_nodes=4)
        assert wl.natoms == 17_639_979
        assert wl.bytes_per_step == pytest.approx(134.6 * 2**20, rel=0.01)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WeakScalingWorkload(sim_nodes=0, staging_nodes=1)
        with pytest.raises(ValueError):
            WeakScalingWorkload(sim_nodes=1, staging_nodes=4, spare_staging_nodes=5)
        with pytest.raises(ValueError):
            atoms_for_nodes(-1)


class TestLammpsDriver:
    def _setup(self, env, total_steps=5, crack_step=None):
        machine = Machine(env, num_nodes=8, memory_per_node=64 * 2**30)
        messenger = Messenger(env, machine.network)
        link = DataTapLink(env, messenger, "out")
        writers = [
            DataTapWriter(env, messenger, machine.nodes[i], name=f"w{i}")
            for i in range(2)
        ]
        for w in writers:
            link.add_writer(w)
        queue = Store(env, capacity=64)
        link.add_reader(DataTapReader(env, messenger, machine.nodes[4], "r0", queue))
        wl = WeakScalingWorkload(
            sim_nodes=256, staging_nodes=4, output_interval=15.0, total_steps=total_steps
        )
        driver = LammpsDriver(env, writers, wl, crack_step=crack_step)
        return driver, queue, wl

    def test_emits_on_cadence(self, env):
        driver, queue, wl = self._setup(env, total_steps=4)
        env.run(until=driver.finished)
        assert driver.steps_emitted == 4
        intervals = np.diff(driver.emit_times)
        assert np.all(intervals >= wl.output_interval - 1e-9)

    def test_chunk_sizes_match_table(self, env):
        driver, queue, wl = self._setup(env, total_steps=2)
        env.run(until=driver.finished)
        env.run(until=env.now + 30)
        chunks = queue.items
        assert len(chunks) == 4  # 2 steps x 2 writers
        total_step0 = sum(c.nbytes for c in chunks if c.timestep == 0)
        assert total_step0 == pytest.approx(wl.bytes_per_step)

    def test_crack_marker_from_step(self, env):
        driver, queue, wl = self._setup(env, total_steps=4, crack_step=2)
        env.run(until=driver.finished)
        env.run(until=env.now + 30)
        for chunk in queue.items:
            assert chunk.payload["crack"] == (chunk.timestep >= 2)

    def test_requires_writers(self, env):
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=4)
        with pytest.raises(ValueError):
            LammpsDriver(env, [], wl)
