"""Meta-test: every message type the protocol code uses is schema-covered.

Grep-the-source style: scan the subsystems that construct control-plane
messages for ``MessageType.X`` references and require each referenced
type to have an entry in :data:`repro.evpath.messages.SCHEMAS`.  A new
protocol that invents a message type without declaring its payload
schema would silently bypass ``validate_message`` — this test makes that
a loud failure instead.
"""

import re
from pathlib import Path

import pytest

from repro.evpath.messages import SCHEMAS, MessageType

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the subsystems that send (or handle) protocol messages
SCANNED = ("containers", "transactions", "faults", "controlplane", "datatap")

_REF = re.compile(r"MessageType\.([A-Z_]+)")


def _referenced_types():
    refs = {}
    for subsystem in SCANNED:
        for path in sorted((SRC / subsystem).rglob("*.py")):
            for name in _REF.findall(path.read_text()):
                refs.setdefault(name, set()).add(f"{subsystem}/{path.name}")
    return refs


def test_scanned_subsystems_exist():
    for subsystem in SCANNED:
        assert (SRC / subsystem).is_dir(), subsystem


def test_source_references_are_real_message_types():
    unknown = [n for n in _referenced_types() if n not in MessageType.__members__]
    assert not unknown, f"source references unknown MessageType members: {unknown}"


def test_every_used_message_type_has_a_schema():
    refs = _referenced_types()
    assert refs, "scan found no MessageType references — pattern broken?"
    missing = {
        name: sorted(files)
        for name, files in sorted(refs.items())
        if MessageType.__members__[name] not in SCHEMAS
    }
    assert not missing, (
        "message types used without a SCHEMAS entry (payload validation "
        f"silently skipped): {missing}"
    )


@pytest.mark.parametrize("mtype", sorted(SCHEMAS, key=lambda m: m.name))
def test_schema_fields_are_frozen_named_tuples(mtype):
    schema = SCHEMAS[mtype]
    assert schema.mtype is mtype
    assert isinstance(schema.required, tuple)
