"""Integration tests: the full pipeline under management.

These reproduce the paper's three experiment configurations end-to-end and
assert the qualitative results of Section IV (see DESIGN.md shape criteria).
"""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import default_stages
from repro.containers.policy import QueueDerivativePolicy


def build(env, sim, staging, spare, steps=40, **kwargs):
    wl = WeakScalingWorkload(
        sim_nodes=sim, staging_nodes=staging, spare_staging_nodes=spare,
        output_interval=15.0, total_steps=steps,
    )
    return PipelineBuilder(env, wl, seed=1, **kwargs).build()


class TestFigure7Scenario:
    """256 sim + 13 staging nodes, no spares: steal from Helper."""

    @pytest.fixture(scope="class")
    def pipe(self):
        env = Environment()
        pipe = build(env, 256, 13, 0)
        pipe.run(settle=120)
        return pipe

    def test_management_steals_from_helper(self, pipe):
        actions = pipe.global_manager.actions_taken
        assert any(a.startswith("steal helper->bonds") for a in actions)

    def test_helper_was_the_donor(self, pipe):
        assert pipe.containers["helper"].units < 4
        assert pipe.containers["bonds"].units >= 5

    def test_application_never_blocked(self, pipe):
        assert pipe.driver.blocked_time == 0.0

    def test_all_timesteps_processed(self, pipe):
        assert pipe.containers["bonds"].completions == 40
        assert pipe.containers["csym"].completions == 40
        assert len(pipe.end_to_end) == 40

    def test_bonds_converges_to_service_time(self, pipe):
        """Post-fix latency settles at the per-chunk service time (the
        achievable minimum), not above it."""
        series = pipe.telemetry.get("bonds", "latency_by_step")
        service = pipe.containers["bonds"].spec.cost.serial_time(pipe.driver.workload.natoms)
        assert series.values[-1] == pytest.approx(service, rel=0.05)

    def test_helper_still_sustains_after_decrease(self, pipe):
        series = pipe.telemetry.get("helper", "latency_by_step")
        assert max(series.values) < 15.0  # still under the output interval

    def test_no_container_offline(self, pipe):
        assert not any(c.offline for c in pipe.containers.values())


class TestFigure8Scenario:
    """512 sim + 24 staging (4 spare): insufficient, but finishes cleanly."""

    @pytest.fixture(scope="class")
    def pipe(self):
        env = Environment()
        pipe = build(env, 512, 24, 4)
        pipe.run(settle=600)
        return pipe

    def test_spares_granted_to_bonds(self, pipe):
        assert "increase bonds +4" in pipe.global_manager.actions_taken
        assert pipe.containers["bonds"].units == 13

    def test_still_insufficient_but_no_offline(self, pipe):
        mgr = pipe.managers["bonds"]
        assert mgr.shortfall(15.0) > 0  # genuinely under-provisioned
        assert not pipe.containers["bonds"].offline

    def test_no_queue_overflow_and_no_blocking(self, pipe):
        assert pipe.driver.blocked_time == 0.0
        for container in pipe.containers.values():
            for replica in container.replicas:
                if not replica.passive:
                    assert replica.queue.overflow_count == 0

    def test_latency_grows_slowly(self, pipe):
        """Insufficient capacity: latency creeps up but by far less than the
        deficit would suggest with no management."""
        series = pipe.telemetry.get("bonds", "latency_by_step")
        assert series.values[-1] > series.values[0]
        assert series.values[-1] < series.values[0] * 1.5


class TestFigure9And10Scenario:
    """1024 sim + 24 staging (4 spare): spares, then offline cascade."""

    @pytest.fixture(scope="class")
    def pipe(self):
        env = Environment()
        pipe = build(env, 1024, 24, 4, steps=60)
        pipe.run(settle=300)
        return pipe

    def test_spares_used_before_offline(self, pipe):
        actions = pipe.global_manager.actions_taken
        incr = actions.index("increase bonds +4")
        off = actions.index("offline bonds")
        assert incr < off

    def test_bonds_and_dependents_offline(self, pipe):
        assert pipe.containers["bonds"].offline
        assert pipe.containers["csym"].offline
        assert pipe.containers["cna"].offline
        assert not pipe.containers["helper"].offline

    def test_helper_keeps_running_to_disk(self, pipe):
        assert pipe.containers["helper"].completions == 60
        helper_files = [f for f in pipe.fs.files if f.name.startswith("helper.ts")]
        assert helper_files

    def test_offline_output_carries_provenance(self, pipe):
        for record in pipe.fs.files:
            assert "provenance" in record.attributes
        helper_files = [f for f in pipe.fs.files if f.name.startswith("helper.ts")]
        assert all(f.attributes["provenance"] == ["helper"] for f in helper_files)
        assert all(f.attributes["incomplete_pipeline"] for f in helper_files)

    def test_application_never_blocked(self, pipe):
        """The whole point: the offline decision prevented the pipeline from
        blocking the simulation."""
        assert pipe.driver.blocked_time == 0.0

    def test_fig10_sharp_end_to_end_drop(self, pipe):
        times, values = pipe.telemetry.get("pipeline", "end_to_end").times, \
            pipe.telemetry.get("pipeline", "end_to_end").values
        offline_at = next(t for t, label in pipe.telemetry.events if "offline bonds" in label)
        after = [v for t, v in zip(times, values) if t > offline_at + 30]
        assert after
        assert max(after) < 60.0  # pruned pipeline: helper + disk only

    def test_every_timestep_accounted_for(self, pipe):
        """No timestep vanished: each of the 60 steps either exited the
        pipeline or was written to disk (offline flush / stranded)."""
        exited = {ts for _, ts, _ in pipe.end_to_end}
        on_disk = {f.attributes.get("timestep") for f in pipe.fs.files}
        covered = exited | on_disk
        assert set(range(60)) <= covered


class TestDynamicBranch:
    """The Table I branching behaviour: CSym detects the crack, CNA starts."""

    @pytest.fixture(scope="class")
    def pipe(self):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=30)
        pipe = PipelineBuilder(env, wl, seed=2, crack_step=10).build()
        pipe.run(settle=300)
        return pipe

    def test_branch_fires_once(self, pipe):
        assert pipe.branch_fired
        assert sum(1 for _, l in pipe.telemetry.events if "crack detected" in l) == 1

    def test_cna_activated_and_processing(self, pipe):
        cna = pipe.containers["cna"]
        assert cna.active
        assert not cna.offline
        assert cna.completions > 0

    def test_csym_retired(self, pipe):
        assert pipe.containers["csym"].offline
        assert pipe.containers["csym"].units == 0

    def test_cna_output_carries_full_provenance(self, pipe):
        cna_files = [f for f in pipe.fs.files if f.name.startswith("cna.ts")]
        assert cna_files
        assert all(
            f.attributes["provenance"] == ["helper", "bonds", "cna"] for f in cna_files
        )

    def test_csym_processed_pre_crack_steps(self, pipe):
        csym_files = [f for f in pipe.fs.files if f.name.startswith("csym.ts")]
        assert csym_files  # it ran until the branch


class TestAlternativePolicy:
    def test_queue_derivative_policy_also_fixes_fig7(self):
        env = Environment()
        pipe = build(env, 256, 13, 0, steps=30,
                     policy=QueueDerivativePolicy(growth_threshold=0.001))
        pipe.run(settle=120)
        assert pipe.containers["bonds"].units >= 5
        assert pipe.driver.blocked_time == 0.0


class TestPullSchedulerIntegration:
    def test_disabling_scheduler_still_works(self):
        env = Environment()
        pipe = build(env, 256, 13, 0, steps=10, use_pull_scheduler=False)
        pipe.run(settle=120)
        assert pipe.containers["helper"].completions == 10


class TestDefaultStages:
    def test_fig7_allocation_sums_to_staging(self):
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13)
        stages = default_stages(wl)
        assert sum(s.units for s in stages) == 13

    def test_fig8_allocation_leaves_four_spares(self):
        wl = WeakScalingWorkload(sim_nodes=512, staging_nodes=24, spare_staging_nodes=4)
        stages = default_stages(wl)
        assert sum(s.units for s in stages) == 20

    def test_cna_is_standby(self):
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13)
        stages = default_stages(wl)
        cna = next(s for s in stages if s.component == "cna")
        assert cna.standby
