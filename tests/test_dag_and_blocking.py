"""Tests for static DAG pipelines (fan-out) and blocking accounting."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel

MIB = 2**20


class TestStaticFanOut:
    def test_two_active_consumers_each_see_full_stream(self):
        """A declared DAG: Bonds feeds CSym *and* CNA simultaneously (no
        standby, no branch) — both must process every timestep."""
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16,
                                 output_interval=15.0, total_steps=12)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 5, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
            StageConfig("cna", 4, ComputeModel.ROUND_ROBIN, upstream="bonds",
                        standby=False),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()
        assert len(pipe.containers["bonds"].output_links) == 2
        pipe.run(settle=900)
        assert pipe.containers["csym"].completions == 12
        assert pipe.containers["cna"].completions == 12
        # Both sinks wrote their own outputs.
        assert any(f.name.startswith("csym.") for f in pipe.fs.files)
        assert any(f.name.startswith("cna.") for f in pipe.fs.files)

    def test_fanout_exit_counts_each_sink(self):
        """Pipeline exits are recorded once per sink completion."""
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16,
                                 output_interval=15.0, total_steps=6)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 5, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
            StageConfig("cna", 4, ComputeModel.ROUND_ROBIN, upstream="bonds",
                        standby=False),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()
        pipe.run(settle=900)
        assert len(pipe.end_to_end) == 12  # 6 steps x 2 sinks

    def test_branch_semantics_preserved_with_standby(self):
        """The default (standby CNA) still swaps rather than fans out."""
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=6)
        pipe = PipelineBuilder(env, wl, seed=0, control_interval=10_000).build()
        assert len(pipe.containers["bonds"].output_links) == 1


class TestBlockingAccounting:
    def _tight(self, managed, steps=40):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24,
                                 spare_staging_nodes=4,
                                 output_interval=15.0, total_steps=steps)
        pipe = PipelineBuilder(
            env, wl, seed=1,
            control_interval=30.0 if managed else 1e9,
            stage_buffer_bytes=480 * MIB,
            sim_buffer_bytes=3 * 68 * MIB,
        ).build()
        finished = pipe.run(settle=120)
        return pipe, finished

    def test_unmanaged_tight_buffers_wedge_the_application(self):
        pipe, finished = self._tight(managed=False)
        assert not finished
        assert pipe.driver.is_blocked
        assert pipe.driver.total_blocked_time > 0
        assert pipe.driver.steps_emitted < 40

    def test_managed_tight_buffers_stay_unblocked(self):
        pipe, finished = self._tight(managed=True)
        assert finished
        assert pipe.driver.total_blocked_time == 0.0
        assert not pipe.driver.is_blocked
        assert pipe.containers["bonds"].offline  # the prune saved the run

    def test_run_deadline_caps_wedged_simulations(self):
        """A wedged pipeline terminates at the deadline instead of ticking
        its monitors forever."""
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24,
                                 spare_staging_nodes=4,
                                 output_interval=15.0, total_steps=40)
        pipe = PipelineBuilder(
            env, wl, seed=1, control_interval=1e9,
            stage_buffer_bytes=480 * MIB, sim_buffer_bytes=3 * 68 * MIB,
        ).build()
        finished = pipe.run(deadline=250.0)
        assert not finished
        assert env.now == pytest.approx(250.0, abs=1.0)

    def test_buffer_caps_validated(self, env, machine):
        from repro.datatap.buffer import StagingBuffer

        with pytest.raises(ValueError):
            StagingBuffer(env, machine.nodes[0], capacity_bytes=0)
