"""The DST harness tests: oracles, exploration, shrinking, and the
end-to-end acceptance case — a deliberately planted bug is caught,
reported with its seed, and shrunk to a minimal fault plan."""

import importlib.util
from pathlib import Path

import pytest

from repro.controlplane.trace import ProtocolTrace, RoundTrace
from repro.faults import FaultPlan
from repro.transactions.coordinator import TxnOutcome
from repro.dst import (
    INVARIANTS,
    DSTScenario,
    InvariantMonitor,
    explore,
    shrink,
)
from repro.dst.invariants import D2TPresumedAbort

pytestmark = pytest.mark.dst


# -- trace well-formedness oracle --------------------------------------------------


def _trace(status, rounds, compensated=(), abort_reason=None):
    t = ProtocolTrace(protocol="demo", subject="x", started_at=0.0,
                      finished_at=10.0, status=status,
                      abort_reason=abort_reason, compensated=list(compensated))
    clock = 0.0
    for name, rstatus in rounds:
        rt = RoundTrace(name=name, started_at=clock, finished_at=clock + 1.0,
                        status=rstatus)
        clock += 1.0
        t.rounds.append(rt)
    return t


class TestProtocolTraceAudit:
    def test_clean_committed_trace(self):
        t = _trace("committed", [("a", "ok"), ("b", "skipped"), ("c", "ok")])
        assert t.audit() == []

    def test_committed_with_compensation_is_flagged(self):
        t = _trace("committed", [("a", "ok")], compensated=["a"])
        assert any("compensated" in p for p in t.audit())

    def test_aborted_without_reason_is_flagged(self):
        t = _trace("aborted", [("a", "ok")])
        assert any("without a reason" in p for p in t.audit())

    def test_reverse_order_compensation_is_clean(self):
        t = _trace("aborted", [("a", "ok"), ("b", "ok"), ("c", "ok")],
                   compensated=["b", "a"], abort_reason="boom")
        assert t.audit() == []

    def test_forward_order_compensation_is_flagged(self):
        t = _trace("aborted", [("a", "ok"), ("b", "ok")],
                   compensated=["a", "b"], abort_reason="boom")
        assert any("compensation order" in p for p in t.audit())

    def test_compensating_a_skipped_round_is_flagged(self):
        t = _trace("aborted", [("a", "ok"), ("b", "skipped")],
                   compensated=["b"], abort_reason="boom")
        assert any("compensation order" in p for p in t.audit())

    def test_out_of_order_rounds_are_flagged(self):
        t = _trace("committed", [("a", "ok"), ("b", "ok")])
        t.rounds[1].started_at = 0.2  # overlaps round a
        assert any("before its predecessor" in p for p in t.audit())

    def test_negative_duration_round_is_flagged(self):
        t = _trace("committed", [("a", "ok")])
        t.rounds[0].finished_at = t.rounds[0].started_at - 1.0
        assert any("finished before it started" in p for p in t.audit())


# -- D2T presumed-abort oracle -----------------------------------------------------


def _outcome(**kw):
    base = dict(txn_id=1, committed=True, started_at=0.0, decided_at=1.0,
                finished_at=2.0, timed_out_groups=[], acks_complete=True,
                votes=[True, True])
    base.update(kw)
    return TxnOutcome(**base)


class TestD2TPresumedAbortAudit:
    def test_unanimous_commit_is_clean(self):
        assert D2TPresumedAbort.audit_outcomes([_outcome()]) == []

    def test_commit_without_votes_is_flagged(self):
        problems = D2TPresumedAbort.audit_outcomes([_outcome(votes=[])])
        assert any("no votes" in p for p in problems)

    def test_commit_over_a_no_vote_is_flagged(self):
        problems = D2TPresumedAbort.audit_outcomes(
            [_outcome(votes=[True, False])]
        )
        assert any("no vote" in p for p in problems)

    def test_commit_with_timed_out_group_is_flagged(self):
        problems = D2TPresumedAbort.audit_outcomes(
            [_outcome(timed_out_groups=["w"])]
        )
        assert any("presumed abort" in p for p in problems)

    def test_abort_is_always_safe(self):
        out = _outcome(committed=False, votes=[False], timed_out_groups=["w"])
        assert D2TPresumedAbort.audit_outcomes([out]) == []

    def test_live_coordinator_outcomes_are_audited(self):
        """An end-to-end committed transaction now records its vote trail."""
        from repro.simkernel import Environment
        from repro.cluster import Machine
        from repro.evpath import Messenger
        from repro.transactions import TransactionManager

        env = Environment()
        machine = Machine(env, num_nodes=9)
        messenger = Messenger(env, machine.network)
        tm = TransactionManager(env, messenger, machine.nodes[-1])
        wg = tm.build_group("w", machine.nodes[:4], fanout=4)
        rg = tm.build_group("r", machine.nodes[4:8], fanout=4)
        tm.run([wg, rg])
        env.run(until=60)
        (outcome,) = tm.coordinator.outcomes
        assert outcome.committed and outcome.votes == [True, True]
        assert D2TPresumedAbort.audit_outcomes(tm.coordinator.outcomes) == []


# -- invariant registry & monitor --------------------------------------------------


class TestRegistry:
    def test_catalogue_is_complete(self):
        assert set(INVARIANTS) >= {
            "node_conservation",
            "exactly_once_delivery",
            "controlplane_well_formed",
            "d2t_presumed_abort",
            "monotone_perf",
        }

    def test_unknown_invariant_name_rejected(self):
        scenario = DSTScenario(name="x", plan=None, invariants=["nope"])
        pipe = scenario.build(seed=None)
        with pytest.raises(ValueError, match="unknown invariants"):
            InvariantMonitor(pipe, ["nope"])


# -- green path --------------------------------------------------------------------


class TestGreenRuns:
    def test_default_schedule_is_clean(self):
        report = DSTScenario(name="smoke").run(seed=None)
        assert report.finished and report.ok

    @pytest.mark.parametrize("seed", [0, 7])
    def test_shuffled_schedules_are_clean(self, seed):
        report = DSTScenario(name="smoke").run(seed)
        assert report.finished, f"seed {seed} did not finish"
        assert report.ok, [v.detail for v in report.violations]
        assert report.plan_signature is not None
        assert f"--seed {seed}" in report.repro

    @pytest.mark.slow
    def test_seed_sweep_is_clean(self):
        exploration = explore(DSTScenario(name="smoke"), range(12))
        assert exploration.ok, exploration.failure.as_dict()
        assert exploration.seeds_run == list(range(12))


# -- the acceptance case: plant a bug, catch it, shrink it -------------------------


def _leak_on_crash(pipe):
    """Test-only bug: crash handling leaks one healthy node from the pool."""
    sched = pipe.scheduler
    original = sched.mark_failed

    def leaky(node):
        original(node)
        if sched._free:
            sched._free.pop()

    sched.mark_failed = leaky


def _crash_plus_noise(seed, pipe):
    """One essential crash buried in irrelevant slowdown events."""
    plan = FaultPlan(seed=seed)
    victim = pipe.containers["bonds"].replicas[1].node.node_id
    bystander = pipe.containers["csym"].replicas[0].node.node_id
    plan.node_crash(40.0, victim)
    plan.node_slowdown(20.0, bystander, factor=2.0, duration=10.0)
    plan.node_slowdown(70.0, bystander, factor=1.6, duration=8.0)
    return plan


class TestPlantedBugIsCaughtAndShrunk:
    def test_explorer_reports_seed_and_violation(self):
        scenario = DSTScenario(name="leaky", plan=_crash_plus_noise,
                               hook=_leak_on_crash)
        exploration = explore(scenario, range(3))
        assert not exploration.ok
        failure = exploration.failure
        assert failure.seed == 0  # first seed already triggers the leak
        assert any(v.invariant == "node_conservation" for v in failure.violations)
        assert any("unaccounted" in v.detail for v in failure.violations)
        assert failure.event_log, "repro report must carry the event log"
        assert f"--seed {failure.seed}" in failure.repro

    def test_shrinker_reduces_to_the_essential_crash(self):
        scenario = DSTScenario(name="leaky", plan=_crash_plus_noise,
                               hook=_leak_on_crash)
        pipe = scenario.build(seed=0)
        plan = scenario.resolve_plan(0, pipe)
        assert len(plan.events) == 3
        result = shrink(scenario, 0, plan)
        assert result.removed == 2
        (event,) = result.plan.events
        assert event.kind.value == "node_crash"
        # and the minimal plan still violates, certifying the repro
        assert not scenario.run(0, plan_override=result.plan).ok

    def test_fix_restores_green(self):
        """Same plan, no planted bug: all invariants hold again."""
        report = DSTScenario(name="fixed", plan=_crash_plus_noise).run(0)
        assert report.ok and report.finished


# -- the predictive oracle ---------------------------------------------------------


def _predictive_scenario(name="predictive"):
    from repro.dst.scenario import plan_for

    return DSTScenario(name=name, preset="predictive",
                       plan=plan_for("predictive"))


class TestPredictiveActionsBounded:
    def test_green_predictive_run(self):
        report = _predictive_scenario().run(0)
        assert report.finished, [v.detail for v in report.violations]
        assert report.ok, [v.detail for v in report.violations]
        assert "--scenario predictive" in report.repro

    def test_reactive_pipeline_is_a_noop(self):
        pipe = DSTScenario(name="overload", preset="overload").build(None)
        assert pipe.analytics is None
        checker = INVARIANTS["predictive_actions_bounded"]()
        assert checker.check(pipe, final=False) == []

    def test_unevidenced_proactive_transition_flagged(self):
        pipe = _predictive_scenario().build(None)
        checker = INVARIANTS["predictive_actions_bounded"]()
        # a proactive rung with no forecaster signal in the store
        pipe.degradation.record(5.0, "brownout", "increase", 1, proactive=True)
        problems = checker.check(pipe, final=False)
        assert any("no preceding forecaster signal" in p for p in problems)

    def test_signal_before_action_is_clean(self):
        pipe = _predictive_scenario().build(None)
        checker = INVARIANTS["predictive_actions_bounded"]()
        pipe.analytics.signal("sla_risk", 1.3, subject="bonds")
        pipe.degradation.record(5.0, "brownout", "increase", 1, proactive=True)
        assert checker.check(pipe, final=False) == []

    def test_proactive_shedding_rung_flagged(self):
        """A forecast alone must never build a shedding rung — stride and
        offline wait for an observed violation."""
        pipe = _predictive_scenario().build(None)
        checker = INVARIANTS["predictive_actions_bounded"]()
        pipe.analytics.signal("sla_risk", 1.3, subject="bonds")
        pipe.degradation.record(5.0, "brownout", "stride", 1, proactive=True)
        problems = checker.check(pipe, final=False)
        assert any("outside proactive_kinds" in p for p in problems)

    def test_skipped_rung_caught_end_to_end(self):
        """Planted bug: transitions recorded two levels at a time — the
        sweep must catch the skipped rung."""

        def double_levels(pipe):
            trace = pipe.degradation
            original = trace.record

            def doubled(time, kind, action, level, **detail):
                original(time, kind, action, level * 2, **detail)

            trace.record = doubled

        scenario = _predictive_scenario(name="skippy")
        scenario.hook = double_levels
        report = scenario.run(0)
        assert not report.ok
        assert any(
            v.invariant == "predictive_actions_bounded"
            and "skipped rungs" in v.detail
            for v in report.violations
        )


# -- bench integration -------------------------------------------------------------


class TestBenchChaosSurfacesSwallowedFaults:
    def test_emit_report_carries_the_counter(self, tmp_path, monkeypatch):
        bench_path = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "bench_chaos.py"
        )
        spec = importlib.util.spec_from_file_location("bench_chaos", bench_path)
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        monkeypatch.setattr(bench, "REPORT_PATH", tmp_path / "BENCH_faults.json")
        metrics = {
            "crash_time": 60.0, "detect_delay": 2.0, "mttr_detected": 10.0,
            "mttr_full": 12.0, "timesteps_lost": 0, "duplicates": 0,
            "availability": 0.98, "final_bonds_latency": 8.0,
            "recovery_rounds": 7, "redelivered": 3, "swallowed_faults": 2,
        }
        doc = bench.emit_report(metrics)
        assert doc["counters"]["chaos.swallowed_faults"] == 2
        assert (tmp_path / "BENCH_faults.json").exists()
