"""Tests for the real MD substrate: lattices, neighbours, potential, dynamics."""

import numpy as np
import pytest

from repro.lammps import (
    CellList,
    LennardJones,
    MDSystem,
    VelocityVerlet,
    fcc_lattice,
    hex_lattice,
    neighbor_pairs,
    notch,
)
from repro.lammps.lattice import R0


class TestLattices:
    def test_hex_count_and_spacing(self):
        pos, box = hex_lattice(10, 6)
        assert len(pos) == 60
        # Nearest-neighbour distance equals the requested spacing.
        pairs = neighbor_pairs(pos, R0 * 1.05)
        d = np.linalg.norm(pos[pairs[:, 0]] - pos[pairs[:, 1]], axis=1)
        assert np.allclose(d, R0, atol=1e-9)

    def test_hex_interior_coordination_is_six(self):
        pos, box = hex_lattice(12, 12)
        cells = CellList(pos, R0 * 1.1)
        interior = [
            i for i, p in enumerate(pos)
            if 3 < p[0] < box[0, 1] - 3 and 3 < p[1] < box[1, 1] - 3
        ]
        assert interior
        assert all(len(cells.neighbors_of(i)) == 6 for i in interior)

    def test_fcc_count(self):
        pos, box = fcc_lattice(3, 4, 5)
        assert len(pos) == 4 * 3 * 4 * 5

    def test_fcc_interior_coordination_is_twelve(self):
        pos, box = fcc_lattice(4, 4, 4)
        cells = CellList(pos, R0 * 1.1)
        center = box[:, 1] / 2
        idx = int(np.argmin(np.linalg.norm(pos - center, axis=1)))
        assert len(cells.neighbors_of(idx)) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            hex_lattice(0, 5)
        with pytest.raises(ValueError):
            fcc_lattice(1, 1, 0)

    def test_notch_removes_wedge(self):
        pos, box = hex_lattice(20, 10)
        tip = np.array([5.0, box[1, 1] / 2])
        cut = notch(pos, tip, length=6.0, half_width=1.0)
        assert len(cut) < len(pos)
        # No surviving atom inside the notch region.
        inside = (
            (cut[:, 0] >= tip[0] - 6.0)
            & (cut[:, 0] <= tip[0])
            & (np.abs(cut[:, 1] - tip[1]) <= 1.0)
        )
        assert not inside.any()

    def test_notch_validation(self):
        pos, _ = hex_lattice(5, 5)
        with pytest.raises(ValueError):
            notch(pos, np.array([1.0]), 1.0, 1.0)
        with pytest.raises(ValueError):
            notch(pos, np.array([1.0, 1.0]), -1.0, 1.0)


class TestNeighborSearch:
    def test_celllist_matches_allpairs_2d(self):
        rng = np.random.default_rng(3)
        pos = rng.random((300, 2)) * 8
        naive = {tuple(p) for p in neighbor_pairs(pos, 0.6)}
        fast = {tuple(p) for p in CellList(pos, 0.6).pairs()}
        assert naive == fast

    def test_celllist_matches_allpairs_3d(self):
        rng = np.random.default_rng(4)
        pos = rng.random((200, 3)) * 4
        naive = {tuple(p) for p in neighbor_pairs(pos, 0.7)}
        fast = {tuple(p) for p in CellList(pos, 0.7).pairs()}
        assert naive == fast

    def test_empty_and_single(self):
        assert len(neighbor_pairs(np.zeros((0, 2)), 1.0)) == 0
        assert len(CellList(np.zeros((1, 2)), 1.0).pairs()) == 0

    def test_neighbors_of_symmetry(self):
        rng = np.random.default_rng(5)
        pos = rng.random((100, 2)) * 5
        cells = CellList(pos, 0.8)
        for i in (0, 17, 50):
            for j in cells.neighbors_of(i):
                assert i in cells.neighbors_of(int(j))

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            CellList(np.zeros((5, 2)), 0.0)
        with pytest.raises(ValueError):
            neighbor_pairs(np.zeros((5, 2)), -1.0)


class TestLennardJones:
    def test_minimum_at_r0(self):
        lj = LennardJones()
        r = np.linspace(0.9, 2.0, 2000)
        e = lj.pair_energy(r)
        assert r[np.argmin(e)] == pytest.approx(R0, abs=1e-3)

    def test_zero_beyond_cutoff(self):
        lj = LennardJones(cutoff=2.5)
        assert lj.pair_energy(np.array([3.0]))[0] == 0.0

    def test_forces_are_gradient(self):
        """Finite-difference check: F = -dE/dx on a perturbed lattice."""
        lj = LennardJones()
        rng = np.random.default_rng(6)
        pos, _ = hex_lattice(4, 4)
        pos = pos + rng.normal(0, 0.03, pos.shape)
        pairs = neighbor_pairs(pos, 2.5)
        _, forces = lj.energy_forces(pos, pairs)
        h = 1e-7
        for atom in range(3):
            for axis in range(2):
                shifted = pos.copy()
                shifted[atom, axis] += h
                e_plus, _ = lj.energy_forces(shifted, pairs)
                shifted[atom, axis] -= 2 * h
                e_minus, _ = lj.energy_forces(shifted, pairs)
                numeric = -(e_plus - e_minus) / (2 * h)
                assert forces[atom, axis] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_newton_third_law(self):
        lj = LennardJones()
        pos, _ = hex_lattice(6, 6)
        pairs = neighbor_pairs(pos, 2.5)
        _, forces = lj.energy_forces(pos, pairs)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-10)

    def test_lattice_near_equilibrium(self):
        """An ideal hex lattice at R0 spacing has near-zero net forces on
        interior atoms."""
        lj = LennardJones()
        pos, box = hex_lattice(10, 10)
        pairs = neighbor_pairs(pos, 2.5)
        _, forces = lj.energy_forces(pos, pairs)
        interior = (
            (pos[:, 0] > 3) & (pos[:, 0] < box[0, 1] - 3)
            & (pos[:, 1] > 3) & (pos[:, 1] < box[1, 1] - 3)
        )
        assert np.abs(forces[interior]).max() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=-1)


class TestMDSystem:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MDSystem(np.zeros(5))
        with pytest.raises(ValueError):
            MDSystem(np.zeros((5, 2)), velocities=np.zeros((4, 2)))
        with pytest.raises(ValueError):
            MDSystem(np.zeros((5, 2)), frozen=np.zeros(4, dtype=bool))

    def test_thermalize_sets_temperature(self):
        pos, _ = hex_lattice(10, 10)
        system = MDSystem(pos)
        system.thermalize(0.5, np.random.default_rng(0))
        n_dof = system.natoms * 2
        temp = 2 * system.kinetic_energy() / n_dof
        assert temp == pytest.approx(0.5, rel=0.15)

    def test_frozen_atoms_stay_put(self):
        pos, _ = hex_lattice(6, 6)
        frozen = np.zeros(len(pos), dtype=bool)
        frozen[:6] = True
        system = MDSystem(pos, frozen=frozen)
        system.thermalize(0.1, np.random.default_rng(1))
        original = system.positions[frozen].copy()
        integ = VelocityVerlet(system, dt=0.005)
        integ.step(50)
        np.testing.assert_array_equal(system.positions[frozen], original)


class TestVerletSkin:
    """Displacement-triggered neighbour-list reuse (neighbor_mode='verlet')."""

    def test_trajectory_matches_always_rebuild(self):
        pos, _ = hex_lattice(10, 10)
        sys_a = MDSystem(pos.copy())
        sys_a.thermalize(0.05, np.random.default_rng(9))
        sys_b = MDSystem(pos.copy(), velocities=sys_a.velocities.copy())
        always = VelocityVerlet(sys_a, dt=0.005, neighbor_mode="interval",
                                rebuild_every=1)
        reuse = VelocityVerlet(sys_b, dt=0.005, neighbor_mode="verlet")
        always.step(200)
        reuse.step(200)
        np.testing.assert_allclose(sys_a.positions, sys_b.positions, atol=1e-9)
        assert reuse.rebuild_count < always.rebuild_count

    def test_rebuild_only_after_skin_displacement(self):
        pos, _ = hex_lattice(8, 8)
        system = MDSystem(pos)
        integ = VelocityVerlet(system, dt=0.005, neighbor_mode="verlet", skin=0.3)
        assert integ.rebuild_count == 1  # the initial build
        integ.step(20)  # cold lattice: nothing moves far enough
        assert integ.rebuild_count == 1
        # Kick one atom past skin/2: the very next step must rebuild.
        system.positions[10] += 0.2
        integ.step(1)
        assert integ.rebuild_count == 2

    def test_crack_run_rebuilds_under_quarter_of_steps(self):
        """Acceptance bar: < 25% of steps rebuild over a 200-step crack run,
        asserted through the md.rebuild perf counter."""
        from repro.perf.registry import REGISTRY

        REGISTRY.reset()
        try:
            from repro.lammps.crack import CrackExperiment

            experiment = CrackExperiment(nx=24, ny=14, md_steps_per_epoch=50)
            for _ in range(4):
                experiment.run_epoch()
            steps = REGISTRY.counter("md.step")
            rebuilds = REGISTRY.counter("md.rebuild")
            assert steps == 200
            assert experiment.integrator.neighbor_mode == "verlet"
            # One initial build happens before stepping; even counting it the
            # fraction stays far below the bar.
            assert rebuilds < 0.25 * steps
        finally:
            REGISTRY.reset()

    def test_mode_validation(self):
        pos, _ = hex_lattice(4, 4)
        with pytest.raises(ValueError):
            VelocityVerlet(MDSystem(pos), neighbor_mode="psychic")
        with pytest.raises(ValueError):
            VelocityVerlet(MDSystem(pos), skin=-0.1)


class TestVelocityVerlet:
    def test_energy_conservation(self):
        pos, _ = hex_lattice(8, 8)
        system = MDSystem(pos)
        system.thermalize(0.05, np.random.default_rng(2))
        integ = VelocityVerlet(system, dt=0.002, rebuild_every=5)
        e0 = integ.potential_energy + system.kinetic_energy()
        integ.step(300)
        e1 = integ.potential_energy + system.kinetic_energy()
        assert abs(e1 - e0) / abs(e0) < 1e-4

    def test_thermostat_holds_temperature(self):
        pos, _ = hex_lattice(8, 8)
        system = MDSystem(pos)
        system.thermalize(0.3, np.random.default_rng(3))
        integ = VelocityVerlet(system, dt=0.005)
        integ.step(100, rescale_to=0.1)
        n_dof = system.natoms * 2
        temp = 2 * system.kinetic_energy() / n_dof
        assert temp == pytest.approx(0.1, rel=0.05)

    def test_snapshot_copies_state(self):
        pos, _ = hex_lattice(4, 4)
        system = MDSystem(pos)
        integ = VelocityVerlet(system)
        snap = integ.snapshot()
        system.positions += 1.0
        assert not np.allclose(snap.positions, system.positions)
        assert snap.natoms == len(pos)

    def test_validation(self):
        pos, _ = hex_lattice(4, 4)
        with pytest.raises(ValueError):
            VelocityVerlet(MDSystem(pos), dt=0)
        with pytest.raises(ValueError):
            VelocityVerlet(MDSystem(pos), rebuild_every=0)
