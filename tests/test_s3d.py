"""Tests for the S3D substrate: solver physics, front analytics, pipeline."""

import numpy as np
import pytest

from repro.s3d import FrontTracker, ReactionDiffusion, extract_front, front_position
from repro.s3d.components import S3D_COMPONENTS


class TestSolver:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReactionDiffusion(nx=2, ny=10)
        with pytest.raises(ValueError):
            ReactionDiffusion(diffusivity=0)
        with pytest.raises(ValueError):
            ReactionDiffusion(dt=10.0)  # beyond the stability limit

    def test_u_stays_in_unit_interval(self):
        solver = ReactionDiffusion(nx=60, ny=10)
        solver.ignite_left(5)
        solver.step(300)
        assert solver.u.min() >= 0.0
        assert solver.u.max() <= 1.0

    def test_unignited_field_stays_cold(self):
        solver = ReactionDiffusion(nx=40, ny=8)
        solver.step(200)
        assert solver.u.max() == 0.0  # u=0 is a fixed point

    def test_fully_burnt_is_steady_state(self):
        solver = ReactionDiffusion(nx=40, ny=8)
        solver.u[:] = 1.0
        solver.step(200)
        assert solver.u.min() == pytest.approx(1.0)

    def test_burnt_fraction_monotone(self):
        solver = ReactionDiffusion(nx=100, ny=10)
        solver.ignite_left(5)
        fractions = []
        for _ in range(6):
            solver.step(100)
            fractions.append(solver.burnt_fraction())
        assert fractions == sorted(fractions)
        assert fractions[-1] > fractions[0]

    def test_front_speed_matches_fisher_theory(self):
        """The traveling wave moves at ~2 sqrt(D r) once relaxed."""
        solver = ReactionDiffusion(nx=600, ny=8, dx=0.5, diffusivity=1.0, rate=0.25)
        solver.ignite_left(10)
        tracker = FrontTracker(dx=0.5)
        for _ in range(36):
            solver.step(100)
            sample = tracker.update(solver.time, solver.u)
            if sample.position > 0.75 * 600 * 0.5:
                break
        measured = tracker.mean_speed(skip=8)
        assert measured == pytest.approx(solver.wave_speed, rel=0.10)

    def test_speed_scales_with_parameters(self):
        """c = 2 sqrt(D r): quadrupling r doubles the speed."""
        def measure(rate):
            solver = ReactionDiffusion(nx=700, ny=6, dx=0.5, rate=rate)
            solver.ignite_left(10)
            tracker = FrontTracker(dx=0.5)
            for _ in range(30):
                solver.step(80)
                sample = tracker.update(solver.time, solver.u)
                if sample.position > 0.7 * 700 * 0.5:
                    break
            return tracker.mean_speed(skip=8)

        slow = measure(0.1)
        fast = measure(0.4)
        assert fast == pytest.approx(2 * slow, rel=0.15)

    def test_point_ignition_expands(self):
        solver = ReactionDiffusion(nx=80, ny=80)
        solver.ignite_point(40, 40, radius=4)
        before = solver.burnt_fraction()
        solver.step(200)
        assert solver.burnt_fraction() > before * 2


class TestFrontExtraction:
    def _step_field(self, nx=50, ny=6, edge=20.3):
        """A synthetic sharp front at x = edge."""
        x = np.arange(nx)
        u = np.where(x[None, :] < edge, 1.0, 0.0).repeat(ny, axis=0).reshape(ny, nx)
        return u

    def test_sharp_front_located(self):
        u = self._step_field(edge=20.0)
        positions = extract_front(u, level=0.5)
        assert np.allclose(positions, 19.5)  # interpolated between 19 and 20

    def test_dx_scaling(self):
        u = self._step_field(edge=20.0)
        assert front_position(u, dx=2.0) == pytest.approx(39.0)

    def test_linear_ramp_interpolation(self):
        # u falls linearly 1 -> 0 over the row: crossing at the midpoint.
        nx = 11
        u = np.tile(np.linspace(1.0, 0.0, nx), (4, 1))
        positions = extract_front(u, level=0.5)
        assert np.allclose(positions, 5.0)

    def test_cold_field_has_no_front(self):
        assert np.isnan(front_position(np.zeros((5, 20))))

    def test_burnt_field_reports_domain_edge(self):
        positions = extract_front(np.ones((3, 10)))
        assert np.allclose(positions, 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            extract_front(np.zeros(5))
        with pytest.raises(ValueError):
            extract_front(np.zeros((3, 3)), level=1.5)


class TestFrontTracker:
    def test_speed_derived_from_consecutive_samples(self):
        tracker = FrontTracker()
        u1 = np.tile(np.where(np.arange(40) < 10, 1.0, 0.0), (4, 1))
        u2 = np.tile(np.where(np.arange(40) < 15, 1.0, 0.0), (4, 1))
        tracker.update(0.0, u1)
        sample = tracker.update(5.0, u2)
        assert sample.speed == pytest.approx(1.0)

    def test_wrinkling_measures_roughness(self):
        flat = np.tile(np.where(np.arange(40) < 10, 1.0, 0.0), (4, 1))
        rough = flat.copy()
        rough[0, :20] = 1.0  # one row's front much further along
        tracker = FrontTracker()
        assert tracker.update(0.0, rough).wrinkling > \
            FrontTracker().update(0.0, flat).wrinkling

    def test_snapshot_restore(self):
        tracker = FrontTracker()
        u = np.tile(np.where(np.arange(40) < 10, 1.0, 0.0), (4, 1))
        tracker.update(0.0, u)
        clone = FrontTracker.restore(tracker.snapshot())
        assert clone.samples == tracker.samples
        assert clone.state_bytes() == tracker.state_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            FrontTracker(level=0.0)


class TestS3DPipeline:
    def test_managed_s3d_pipeline(self):
        """The DES pipeline with the S3D stage set: the front stage is the
        bottleneck; management fixes it from spares."""
        from repro import Environment, PipelineBuilder, WeakScalingWorkload
        from repro.containers.pipeline import StageConfig
        from repro.smartpointer.costs import ComputeModel

        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=14,
                                 spare_staging_nodes=2,
                                 output_interval=15.0, total_steps=25)
        stages = [
            StageConfig("reduce", 3, ComputeModel.TREE, upstream=None),
            StageConfig("front", 4, ComputeModel.ROUND_ROBIN, upstream="reduce"),
            StageConfig("track", 2, ComputeModel.ROUND_ROBIN, upstream="front"),
        ]
        # StageConfig.spec() looks up SMARTPOINTER_COMPONENTS; patch lookup.
        for stage in stages:
            stage.spec = (lambda s=stage: S3D_COMPONENTS[s.component])
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0).build()
        pipe.run(settle=300)
        assert pipe.containers["track"].completions == 25
        assert pipe.driver.blocked_time == 0.0
        # front needed 5 units (65s service / 15s rate), started with 4.
        assert pipe.containers["front"].units >= 5
