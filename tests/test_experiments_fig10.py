"""Tests for the fig10 runner and remaining manager operation paths."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.experiments import run_experiment
from repro.experiments.report import render
from repro.simkernel.errors import SimulationError


class TestFig10Runner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig10")

    def test_paper_config_prunes_bonds(self, result):
        paper = result["paper_config_1024"]
        assert paper["containers"]["bonds"]["offline"]
        assert paper["blocked_seconds"] == 0.0

    def test_companion_shows_rising_then_drop(self, result):
        companion = result["companion_640"]
        e2e = companion["end_to_end"]
        offline_at = next(t for t, label in companion["events"]
                          if "offline bonds" in label)
        before = [v for t, v in e2e if t <= offline_at]
        after = [v for t, v in e2e if t > offline_at + 30]
        assert before and after
        assert before[-1] > before[0]
        assert max(after) < before[-1] * 0.25

    def test_renders_without_error(self, result):
        text = render(result)
        assert "paper_config_1024" in text
        assert "end_to_end" in text


class TestManagerOpEdges:
    def _pipe(self, env):
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=6)
        return PipelineBuilder(env, wl, seed=0, control_interval=10_000).build()

    def test_activate_already_active_is_noop(self):
        env = Environment()
        pipe = self._pipe(env)

        def ctl(env):
            yield env.timeout(1)
            units = yield pipe.global_manager.activate("bonds")
            assert units == 4  # unchanged

        env.process(ctl(env))
        pipe.run(settle=60)

    def test_set_stride_unknown_container(self):
        env = Environment()
        pipe = self._pipe(env)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.set_stride("ghost", 2)

        env.process(ctl(env))
        with pytest.raises(SimulationError, match="unknown container"):
            pipe.run(settle=60)

    def test_offline_idempotent(self):
        env = Environment()
        pipe = self._pipe(env)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.take_offline("csym")
            # Second call finds it already offline: no crash, no node loss.
            yield pipe.global_manager.take_offline("csym")

        env.process(ctl(env))
        pipe.run(settle=120)
        assert pipe.containers["csym"].offline
        assert pipe.scheduler.free_nodes == 3

    def test_monitor_skips_offline_containers(self):
        env = Environment()
        pipe = self._pipe(env)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.take_offline("csym")

        env.process(ctl(env))
        pipe.run(settle=120)
        series = pipe.telemetry.get("csym", "units")
        # Reports stop after the offline transition.
        if series is not None:
            assert all(v > 0 for v in series.values)
