"""Engine fast-path pins: differential identity vs the frozen reference
loop, tombstone semantics, and the run(until) defuse fix.

The optimization contract is *byte-identical schedules*: the inlined run
loop, monomorphic tie-break, tombstoning and the Messenger fast-send chain
must be observationally indistinguishable from the pre-PR engine kept in
``repro.simkernel._reference``.  The differential property test drives
seeded random workloads (timeouts, interrupts, conditions, explicit
cancels, fire-and-forget faults) through both engines and asserts the
complete schedule-call logs, process logs, final clocks and
``swallowed_faults`` match.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment, FaultError, Interrupt, shuffle
from repro.simkernel._reference import ReferenceEnvironment
from repro.simkernel.events import NORMAL


# ---------------------------------------------------------------------------
# differential property test
# ---------------------------------------------------------------------------

def _spy_schedule(env, log):
    """Wrap env.schedule to record every scheduling decision.

    Every event on the heap got there through schedule(), so two engines
    with identical spy logs made identical scheduling decisions in an
    identical order — a stronger oracle than sampling process side effects.
    """
    orig = env.schedule

    def schedule(event, priority=NORMAL, delay=0.0):
        log.append((round(env.now, 9), priority, round(delay, 9), type(event).__name__))
        return orig(event, priority, delay)

    env.schedule = schedule


def _build_workload(env, seed, log):
    """Deterministic random mix of everything the engine supports."""
    rng = random.Random(seed)

    # 1. sleepers: plain repeated timeouts
    for i in range(rng.randint(1, 5)):
        delays = [rng.choice([0.0, 0.5, 1.0, 1.5, 2.0]) for _ in range(rng.randint(1, 6))]

        def sleeper(env, i=i, delays=delays):
            for d in delays:
                yield env.timeout(d)
                log.append(("sleep", i, env.now))

        env.process(sleeper(env))

    # 2. interrupt pairs: the victim's abandoned target later fires (as a
    # dead no-op on the reference engine, as a tombstone on the optimized)
    for i in range(rng.randint(0, 3)):
        long = rng.choice([5.0, 7.0, 9.0])
        cut = rng.choice([1.0, 2.0, 3.0])

        def victim(env, i=i, long=long):
            try:
                yield env.timeout(long)
                log.append(("slept", i, env.now))
            except Interrupt as intr:
                log.append(("interrupted", i, env.now, str(intr.cause)))
                yield env.timeout(0.25)
                log.append(("recovered", i, env.now))

        proc = env.process(victim(env))

        def interrupter(env, proc=proc, cut=cut, i=i):
            yield env.timeout(cut)
            if proc.is_alive:
                proc.interrupt(cause=f"cut-{i}")

        env.process(interrupter(env))

    # 3. conditions: any_of/all_of over timers; the losers of any_of are
    # exactly the request-timeout pattern the tombstones exist for
    for i in range(rng.randint(0, 4)):
        kind = rng.choice(["any", "all"])
        delays = [rng.choice([0.5, 1.0, 2.0, 4.0]) for _ in range(rng.randint(2, 4))]

        def condproc(env, kind=kind, delays=delays, i=i):
            events = [env.timeout(d, value=d) for d in delays]
            cond = env.any_of(events) if kind == "any" else env.all_of(events)
            got = yield cond
            log.append(("cond", kind, i, env.now, len(got)))

        env.process(condproc(env))

    # 4. fire-and-forget failures: FaultError swallowed, plain defused
    for i in range(rng.randint(0, 3)):
        ev = env.event()
        if rng.random() < 0.5:
            ev.fail(FaultError(f"lost-{i}"))
        else:
            ev.fail(RuntimeError(f"handled-{i}"))
            ev.defuse()

    # 5. explicit cancels (no-op on the reference engine), including
    # cancel-at-fire-time races and post-cancel revival by a waiter
    for i in range(rng.randint(0, 4)):
        fire = rng.choice([1.0, 2.0, 3.0])
        when = rng.choice([0.0, 1.0, 2.0, 3.0])
        revive = rng.random() < 0.3

        timer = env.timeout(fire, value=i)

        def canceller(env, timer=timer, when=when, i=i):
            yield env.timeout(when)
            log.append(("cancel", i, env.now, env.cancel(timer) if True else None))

        def waiter(env, timer=timer, i=i):
            yield env.timeout(0.5)
            got = yield timer
            log.append(("revived", i, env.now, got))

        env.process(canceller(env))
        if revive:
            env.process(waiter(env))


def _run(env_cls, seed, tie_seed=None):
    env = env_cls() if tie_seed is None else env_cls(tie_breaker=shuffle(tie_seed))
    schedule_log, proc_log = [], []
    _spy_schedule(env, schedule_log)
    _build_workload(env, seed, proc_log)
    env.run()
    return schedule_log, proc_log, env.now, env.swallowed_faults


class TestDifferentialIdentity:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_matches_reference(self, seed):
        """Same workload, both engines, default tie-breaker: identical
        schedule logs, process logs, clocks, swallowed_faults — except the
        optimized cancel() returns True where the reference returns False."""
        ref = _run(ReferenceEnvironment, seed)
        opt = _run(Environment, seed)
        self._assert_equal(ref, opt)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           tie_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_shuffle_matches_reference(self, seed, tie_seed):
        """The virtual tie-break path (SeededShuffle) is equally pinned."""
        ref = _run(ReferenceEnvironment, seed, tie_seed)
        opt = _run(Environment, seed, tie_seed)
        self._assert_equal(ref, opt)

    @staticmethod
    def _assert_equal(ref, opt):
        def scrub(entry):
            # cancel() legitimately differs: False on the reference engine,
            # possibly True on the optimized one.  Everything else is exact.
            if entry and entry[0] == "cancel":
                return entry[:3]
            return entry

        assert ref[0] == opt[0], "schedule-call logs diverged"
        assert [scrub(e) for e in ref[1]] == [scrub(e) for e in opt[1]]
        assert ref[2] == opt[2], "final clocks diverged"
        assert ref[3] == opt[3], "swallowed_faults diverged"


# ---------------------------------------------------------------------------
# tombstones
# ---------------------------------------------------------------------------

class TestTombstones:
    def test_cancel_refuses_untriggered_subscribed_processed_and_failed(self):
        env = Environment()
        pending = env.event()
        assert env.cancel(pending) is False  # untriggered

        timer = env.timeout(1.0)

        def waiter(env):
            yield timer

        env.process(timer and waiter(env))
        env.run(until=0.5)
        assert env.cancel(timer) is False  # has a subscriber

        done = env.timeout(0.1)
        env.run(until=1.5)
        assert env.cancel(done) is False  # already processed

        boom = env.event()
        boom.fail(FaultError("x"))
        assert env.cancel(boom) is False  # unobserved failure must surface
        env.run()
        assert env.swallowed_faults == 1

    def test_cancelled_timer_is_skipped_but_clock_still_advances(self):
        env = Environment()
        fired = []
        t = env.timeout(5.0)
        t.callbacks.clear()  # nobody waits
        assert env.cancel(t) is True
        env.process((lambda e: (yield e.timeout(1.0)) and None or fired.append(e.now))(env))
        env.run()
        # identical to the reference engine popping the dead timer:
        assert env.now == 5.0
        assert env.tombstones_skipped == 1

    def test_cancel_then_fire_race_same_timestamp(self):
        env = Environment()
        wake = env.timeout(1.0)   # pops first (lower eid) at t=1.0
        timer = env.timeout(1.0)  # the victim, same timestamp

        def canceller(env):
            yield wake
            assert env.cancel(timer) is True

        env.process(canceller(env))
        env.run()
        assert env.now == 1.0
        assert env.tombstones_skipped == 1
        assert timer.processed  # finalized, never dispatched

    def test_cancel_loses_race_once_popped(self):
        """Insertion order the other way: the timer pops before the would-be
        canceller wakes, so cancel() sees a processed event and refuses."""
        env = Environment()
        timer = env.timeout(1.0)

        def canceller(env):
            yield env.timeout(1.0)
            assert env.cancel(timer) is False

        env.process(canceller(env))
        env.run()
        assert env.tombstones_skipped == 0

    def test_revival_by_yield(self):
        env = Environment()
        timer = env.timeout(2.0, value="late")
        assert env.cancel(timer) is True
        got = []

        def waiter(env):
            yield env.timeout(1.0)
            got.append((yield timer))

        env.process(waiter(env))
        env.run()
        assert got == ["late"]
        assert env.tombstones_skipped == 0

    def test_compaction_drops_dead_timers_wholesale(self):
        env = Environment()
        timers = [env.timeout(float(i)) for i in range(2000)]
        for t in timers:
            assert env.cancel(t)
        # compaction fires whenever tombstones cross the floor AND outnumber
        # live entries; the remaining sub-floor tail is skipped at pop
        assert env.compactions >= 1
        assert len(env._queue) < 1000
        env.run()
        assert not env._queue
        # every cancelled timer was dropped without dispatch, and the
        # compacted horizon still advances the clock to the last timer
        assert env.tombstones_skipped == 2000
        assert env.now == 1999.0

    def test_interrupt_tombstones_the_abandoned_target(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass

        proc = env.process(victim(env))

        def interrupter(env):
            yield env.timeout(1.0)
            proc.interrupt()

        env.process(interrupter(env))
        env.run()
        assert env.tombstones_skipped == 1
        assert env.now == 100.0  # skip still advances the clock

    def test_any_of_loser_is_tombstoned(self):
        env = Environment()

        def racer(env):
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(50.0, value="slow")
            got = yield env.any_of([fast, slow])
            return list(got.values())

        proc = env.process(racer(env))
        env.run()
        assert proc.value == ["fast"]
        assert env.tombstones_skipped == 1


# ---------------------------------------------------------------------------
# run(until) defuse symmetry (satellite fix)
# ---------------------------------------------------------------------------

class TestRunUntilDefuse:
    def test_already_processed_failed_until_defuses_on_reraise(self):
        """The already-processed branch of run(until=event) must defuse the
        failure exactly like the in-loop branch does."""
        env = Environment()
        ev = env.event()
        ev.fail(FaultError("lost notify"))
        env.run()  # unobserved FaultError: swallowed, *not* defused
        assert env.swallowed_faults == 1
        assert not ev.defused
        with pytest.raises(FaultError, match="lost notify"):
            env.run(until=ev)
        assert ev.defused

    def test_in_loop_failed_until_still_defuses(self):
        """A FaultError `until` failure is swallowed at pop, then re-raised
        defused by the stop check — same as the reference engine."""
        env = Environment()
        ev = env.event()

        def failer(env):
            yield env.timeout(1.0)
            ev.fail(FaultError("boom"))

        env.process(failer(env))
        with pytest.raises(FaultError, match="boom"):
            env.run(until=ev)
        assert ev.defused
