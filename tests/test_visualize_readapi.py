"""Tests for the terminal visualizer and the BP series read API."""

import numpy as np
import pytest

from repro.adios import BpSeries, write_bp
from repro.lammps import hex_lattice
from repro.visualize import legend, render_atoms, render_field


class TestRenderField:
    def test_shape_and_charset(self):
        field = np.random.default_rng(0).random((50, 100))
        art = render_field(field, width=40, height=10)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_gradient_maps_to_ramp(self):
        field = np.tile(np.linspace(0, 1, 100), (10, 1))
        art = render_field(field, width=50, height=4)
        first_col = [line[0] for line in art.splitlines()]
        last_col = [line[-1] for line in art.splitlines()]
        assert set(first_col) == {" "}
        assert set(last_col) == {"@"}

    def test_flat_field_renders_uniform(self):
        art = render_field(np.full((10, 10), 3.0), width=8, height=4)
        assert set(art.replace("\n", "")) == {" "}

    def test_explicit_range(self):
        # With vmax far above the data, everything stays near the low end.
        art = render_field(np.ones((5, 5)), vmin=0, vmax=100, width=5, height=2)
        assert "@" not in art

    def test_validation(self):
        with pytest.raises(ValueError):
            render_field(np.zeros(10))

    def test_flame_front_looks_like_a_front(self):
        from repro.s3d import ReactionDiffusion

        solver = ReactionDiffusion(nx=120, ny=20)
        solver.ignite_left(10)
        solver.step(400)
        art = render_field(solver.u, width=60, height=6, vmin=0, vmax=1)
        lines = art.splitlines()
        # Left edge burnt (@), right edge cold (space).
        assert all(line[0] == "@" for line in lines)
        assert all(line[-1] == " " for line in lines)


class TestRenderAtoms:
    def test_occupancy_raster(self):
        pos, _ = hex_lattice(10, 8)
        art = render_atoms(pos, width=30, height=12)
        assert "o" in art
        assert len(art.splitlines()) == 12

    def test_labels_get_distinct_glyphs(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        labels = np.array([0, 1])
        art = render_atoms(pos, labels, width=20, height=3)
        flat = art.replace("\n", "").replace(" ", "")
        assert len(set(flat)) == 2

    def test_debris_renders_as_dot(self):
        pos = np.array([[0.0, 0.0], [5.0, 5.0]])
        art = render_atoms(pos, np.array([-1, 2]), width=10, height=5)
        assert "." in art

    def test_empty_positions(self):
        art = render_atoms(np.zeros((0, 2)), width=10, height=3)
        assert art.splitlines() == [" " * 10] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            render_atoms(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            render_atoms(np.zeros((4, 2)), labels=np.zeros(3))

    def test_legend(self):
        text = legend([-1, 0, 2])
        assert ".=debris" in text and "#0" in text and "#2" in text


class TestBpSeries:
    def _make_series(self, directory, prefix="csym", count=4):
        for ts in range(count):
            write_bp(
                directory / f"{prefix}.ts{ts:04d}.bp",
                {"csp": np.full(5, float(ts))},
                {"timestep": ts, "provenance": ["helper", "bonds", "csym"],
                 "completed_offline": ts % 2 == 0},
            )

    def test_index_ordered(self, tmp_path):
        self._make_series(tmp_path)
        series = BpSeries(tmp_path, "csym")
        assert series.timesteps == [0, 1, 2, 3]
        assert len(series) == 4

    def test_read_selected_variables(self, tmp_path):
        self._make_series(tmp_path)
        step = BpSeries(tmp_path, "csym").read(2, variables=["csp"])
        assert step.timestep == 2
        np.testing.assert_array_equal(step.variables["csp"], np.full(5, 2.0))

    def test_missing_variable_raises(self, tmp_path):
        self._make_series(tmp_path)
        with pytest.raises(KeyError, match="missing variables"):
            BpSeries(tmp_path, "csym").read(0, variables=["nope"])

    def test_missing_timestep_raises(self, tmp_path):
        self._make_series(tmp_path)
        with pytest.raises(KeyError, match="timestep 99"):
            BpSeries(tmp_path, "csym").read(99)

    def test_prefix_filters_streams(self, tmp_path):
        self._make_series(tmp_path, "csym", 3)
        self._make_series(tmp_path, "cna", 2)
        assert len(BpSeries(tmp_path, "csym")) == 3
        assert len(BpSeries(tmp_path, "cna")) == 2
        assert len(BpSeries(tmp_path)) == 5

    def test_select_by_attribute(self, tmp_path):
        self._make_series(tmp_path)
        series = BpSeries(tmp_path, "csym")
        even = [s.timestep for s in series.select(completed_offline=True)]
        assert even == [0, 2]

    def test_variable_series(self, tmp_path):
        self._make_series(tmp_path)
        steps, values = BpSeries(tmp_path, "csym").variable_series("csp")
        assert steps == [0, 1, 2, 3]
        assert [v[0] for v in values] == [0.0, 1.0, 2.0, 3.0]

    def test_nonexistent_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            BpSeries(tmp_path / "nope")

    def test_files_without_timestep_ignored(self, tmp_path):
        self._make_series(tmp_path, count=2)
        write_bp(tmp_path / "odd.bp", {"x": np.zeros(2)}, {})
        assert len(BpSeries(tmp_path)) == 2
