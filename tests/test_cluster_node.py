"""Unit tests for nodes, NICs, and memory accounting."""

import pytest

from repro.simkernel import Environment, SimulationError
from repro.cluster import Node


class TestNodeValidation:
    def test_positive_cores_required(self, env):
        with pytest.raises(ValueError):
            Node(env, 0, cores=0)

    def test_nic_bandwidth_positive(self, env):
        with pytest.raises(ValueError):
            Node(env, 0, nic_bandwidth=0)


class TestMemory:
    def test_reserve_and_free(self, env):
        node = Node(env, 0, memory_bytes=1000)
        node.reserve_memory(400)
        assert node.memory_used == 400
        assert node.memory_free == 600
        node.free_memory(400)
        assert node.memory_used == 0

    def test_oom_raises(self, env):
        node = Node(env, 0, memory_bytes=1000)
        node.reserve_memory(900)
        with pytest.raises(SimulationError, match="out of memory"):
            node.reserve_memory(200)

    def test_over_free_raises(self, env):
        node = Node(env, 0, memory_bytes=1000)
        node.reserve_memory(100)
        with pytest.raises(SimulationError):
            node.free_memory(200)

    def test_negative_amounts_rejected(self, env):
        node = Node(env, 0)
        with pytest.raises(ValueError):
            node.reserve_memory(-1)
        with pytest.raises(ValueError):
            node.free_memory(-1)

    def test_float_roundoff_tolerated(self, env):
        """Many reserve/free cycles accumulate float error; the final free of
        'everything' must not raise."""
        node = Node(env, 0, memory_bytes=1e9)
        amount = 282276659.2
        for _ in range(50):
            node.reserve_memory(amount)
            node.free_memory(amount)
        node.reserve_memory(amount)
        node.free_memory(node.memory_used)  # exact drain


class TestCompute:
    def test_compute_occupies_cores(self, env):
        node = Node(env, 0, cores=2)
        done = []

        def work(env, label, seconds):
            yield node.compute(seconds)
            done.append((env.now, label))

        env.process(work(env, "a", 2))
        env.process(work(env, "b", 2))
        env.process(work(env, "c", 2))  # must wait for a core
        env.run()
        assert done == [(2.0, "a"), (2.0, "b"), (4.0, "c")]

    def test_compute_multi_core(self, env):
        node = Node(env, 0, cores=4)
        done = []

        def big(env):
            yield node.compute(3, cores=4)
            done.append(("big", env.now))

        def small(env):
            yield env.timeout(0.5)
            yield node.compute(1, cores=1)
            done.append(("small", env.now))

        env.process(big(env))
        env.process(small(env))
        env.run()
        assert done == [("big", 3.0), ("small", 4.0)]

    def test_too_many_cores_rejected(self, env):
        node = Node(env, 0, cores=2)
        with pytest.raises(SimulationError):
            node.compute(1, cores=3)
