"""Tests for mid-run container launches and the visualization scenario."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.simkernel.errors import SimulationError
from repro.smartpointer.component import VIZ_COMPONENT
from repro.smartpointer.costs import ComputeModel


def build(env, steps=20, staging=17, stages=None, **kwargs):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=staging,
                             spare_staging_nodes=staging - 13,
                             output_interval=15.0, total_steps=steps)
    return PipelineBuilder(env, wl, stages=stages, seed=0, **kwargs).build()


class TestLaunchStage:
    def test_viz_launch_from_spares(self):
        env = Environment()
        pipe = build(env, staging=17)  # 4 spares after default stages

        def ctl(env):
            yield env.timeout(100)
            yield pipe.launch_stage(VIZ_COMPONENT, units=2, upstream="bonds",
                                    name="viz")

        env.process(ctl(env))
        pipe.run(settle=300)
        viz = pipe.containers["viz"]
        assert viz.units == 2
        assert viz.completions > 0  # it received and rendered bonds output

    def test_launch_attaches_link_to_sink(self):
        """Launching downstream of CSym (a sink) retrofits an output link."""
        env = Environment()
        pipe = build(env, staging=17)
        assert pipe.containers["csym"].output_link is None

        def ctl(env):
            yield env.timeout(100)
            yield pipe.launch_stage(VIZ_COMPONENT, units=2, upstream="csym",
                                    name="viz")

        env.process(ctl(env))
        pipe.run(settle=300)
        assert pipe.containers["csym"].output_link is not None
        assert pipe.containers["viz"].completions > 0

    def test_pre_launch_output_still_on_disk(self):
        """CSym output produced before the viz launch went to disk; output
        after the launch streams to viz instead."""
        env = Environment()
        pipe = build(env, staging=17, steps=24)

        def ctl(env):
            yield env.timeout(200)
            yield pipe.launch_stage(VIZ_COMPONENT, units=2, upstream="csym",
                                    name="viz")

        env.process(ctl(env))
        pipe.run(settle=300)
        csym_disk = [f for f in pipe.fs.files if f.name.startswith("csym.ts")]
        assert csym_disk  # early steps
        assert pipe.containers["viz"].completions > 0  # later steps

    def test_duplicate_launch_rejected(self):
        env = Environment()
        pipe = build(env, staging=17)

        def ctl(env):
            yield env.timeout(50)
            yield pipe.launch_stage(VIZ_COMPONENT, units=1, upstream="bonds",
                                    name="viz")
            yield pipe.launch_stage(VIZ_COMPONENT, units=1, upstream="bonds",
                                    name="viz")

        proc = env.process(ctl(env))
        with pytest.raises(SimulationError, match="already exists"):
            pipe.run(settle=120)

    def test_launch_recorded_in_telemetry(self):
        env = Environment()
        pipe = build(env, staging=17)

        def ctl(env):
            yield env.timeout(50)
            yield pipe.launch_stage(VIZ_COMPONENT, units=1, upstream="bonds",
                                    name="viz")

        env.process(ctl(env))
        pipe.run(settle=120)
        assert any("interactive launch viz" in l for _, l in pipe.telemetry.events)


class TestStealingFromViz:
    def test_viz_donates_when_analytics_need_nodes(self):
        """The paper's intro scenario: analytics steal from visualization
        when it does not need its nodes.

        Setup: bonds starts one replica short (needs 5), no spares remain
        after viz launches with generous headroom.  The policy must pick
        viz as the donor.
        """
        env = Environment()
        stages = [
            StageConfig("helper", 2, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 4, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        # staging 13: 9 allocated + 4 spare; viz takes all 4 spares.
        pipe = build(env, staging=13, steps=30, stages=stages)

        def ctl(env):
            yield env.timeout(20)
            yield pipe.launch_stage(VIZ_COMPONENT, units=4, upstream="bonds",
                                    name="viz")

        env.process(ctl(env))
        pipe.run(settle=300)
        actions = pipe.global_manager.actions_taken
        assert any(a.startswith("steal viz->bonds") for a in actions), actions
        assert pipe.containers["bonds"].units >= 5
        # Viz kept enough nodes to sustain the rate (headroom-only donation).
        viz = pipe.managers["viz"]
        assert viz.shortfall(15.0) == 0
        assert pipe.containers["viz"].units >= 2
