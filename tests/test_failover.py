"""Tests for the degrade-to-disk failover layer (repro.adios).

Covers the three seams the tentpole added:

* the transport engines — SST publish/subscribe with reader-side flow
  control, the file engine, and the per-link :class:`EngineSwitch`;
* the spill path — ledger discipline (one fate per timestep), durable
  sequenced segments, digest verification on read-back;
* the replay path — catch-up through the ``replay_catchup`` protocol,
  handover bookkeeping, and the cold-start consumer that replays full
  history and bit-matches an always-attached consumer.
"""

from types import SimpleNamespace

import pytest

from repro.simkernel import Environment
from repro.data import DataChunk
from repro.adios.engine import (
    LIVE,
    REPLAYING,
    SPILLING,
    EngineSwitch,
    FileEngine,
    SstStream,
)
from repro.adios.failover import FailoverPolicy
from repro.adios.spill import (
    SPILL_REASONS,
    SpillLedger,
    SpillStore,
    segment_digest,
)
from repro.containers.presets import build_failover_pipeline
from repro.overload.scenario import overload_burst_plan
from repro.smartpointer.component import VIZ_COMPONENT


def stub_node(node_id=0):
    return SimpleNamespace(node_id=node_id)


def chunk(ts, nbytes=1e6):
    return DataChunk(timestep=ts, nbytes=nbytes, created_at=0.0)


# ---------------------------------------------------------------------------
# SST stream: reader-side flow control
# ---------------------------------------------------------------------------

class TestSstFlowControl:
    def test_publisher_blocks_on_full_window(self):
        """The publisher stalls once a subscriber's window is exhausted and
        resumes exactly when the consumer get()s a chunk back out."""
        env = Environment()
        stream = SstStream(env, name="s")
        sub = stream.subscribe("c", window=2)
        published = []

        def produce():
            for ts in range(5):
                yield stream.publish(chunk(ts))
                published.append((env.now, ts))

        env.process(produce())
        env.run(until=10.0)
        # window=2: the first two publishes complete, the third blocks
        assert [ts for _, ts in published] == [0, 1]
        assert sub.backlog == 2

        def consume():
            got = []
            for _ in range(5):
                c, _attrs = yield sub.get()
                got.append(c.timestep)
            return got

        consumer = env.process(consume())
        env.run(until=20.0)
        assert consumer.value == [0, 1, 2, 3, 4]  # FIFO, no loss, no dup
        assert [ts for _, ts in published] == [0, 1, 2, 3, 4]
        assert stream.published == 5

    def test_window_must_be_positive(self):
        env = Environment()
        stream = SstStream(env)
        with pytest.raises(ValueError, match="window"):
            stream.subscribe("c", window=0)

    def test_detached_subscriber_skipped(self):
        env = Environment()
        stream = SstStream(env)
        keep = stream.subscribe("keep", window=8)
        gone = stream.subscribe("gone", window=8)
        gone.detach()

        def produce():
            for ts in range(3):
                yield stream.publish(chunk(ts))

        env.process(produce())
        env.run(until=5.0)
        assert keep.backlog == 3
        assert gone.backlog == 0


# ---------------------------------------------------------------------------
# Spill ledger and store
# ---------------------------------------------------------------------------

class TestSpillLedger:
    def test_one_fate_per_timestep(self):
        ledger = SpillLedger()
        first = ledger.record(3, "bonds", "backpressure_stride", 1.0, nbytes=100.0)
        assert first is not None and first.seq == 0
        assert first.digest == segment_digest("bonds", 3, "backpressure_stride", 100.0)
        # a second spill of the same timestep is absorbed, not double-counted
        assert ledger.record(3, "bonds", "credit_collapse", 2.0, nbytes=100.0) is None
        assert ledger.absorbed == 1
        assert len(ledger) == 1

    def test_delivered_timestep_refused(self):
        ledger = SpillLedger(is_delivered=lambda ts: ts == 7)
        assert ledger.record(7, "bonds", "backpressure_stride", 1.0, nbytes=1.0) is None
        assert ledger.suppressed == 1
        assert ledger.steps() == set()

    def test_unknown_reason_rejected(self):
        ledger = SpillLedger()
        with pytest.raises(ValueError, match="unknown spill reason"):
            ledger.record(0, "bonds", "cosmic_ray", 0.0, nbytes=1.0)
        assert "credit_collapse" in SPILL_REASONS

    def test_double_settle_raises(self):
        ledger = SpillLedger()
        record = ledger.record(0, "bonds", "backpressure_stride", 0.0, nbytes=1.0)
        ledger.mark_replayed(record.seq, 5.0)
        assert record.status == "replayed" and record.settled_at == 5.0
        with pytest.raises(ValueError, match="already settled"):
            ledger.mark_superseded(record.seq, 6.0)

    def test_pending_in_seq_order(self):
        ledger = SpillLedger()
        for ts in (5, 1, 9):
            ledger.record(ts, "bonds", "backpressure_stride", 0.0, nbytes=1.0)
        ledger.mark_replayed(1, 2.0)  # settle the middle record
        assert [r.timestep for r in ledger.pending()] == [5, 9]
        assert ledger.by_status() == {"spilled": 2, "replayed": 1}


class TestSpillStore:
    def test_read_back_verifies_digest(self):
        env = Environment()
        store = SpillStore(env)
        ledger = SpillLedger()
        record = ledger.record(4, "bonds", "backpressure_stride", 0.0, nbytes=2**20)
        node = stub_node()

        def flow():
            yield store.write_segment(node, record)
            file_record = yield store.read_segment(node, record)
            return file_record

        proc = env.process(flow())
        env.run(until=60.0)
        assert proc.value.attributes["digest"] == record.digest
        assert proc.value.attributes["seq"] == record.seq
        assert store.durable_count == 1

    def test_read_blocks_until_durable(self):
        """A replay racing an in-flight spill write waits for durability
        instead of missing the segment."""
        env = Environment()
        store = SpillStore(env, per_stream_bandwidth=2**20)  # slow: ~1s/MiB
        ledger = SpillLedger()
        record = ledger.record(0, "bonds", "backpressure_stride", 0.0, nbytes=2**20)
        node = stub_node()
        times = {}

        def reader():
            yield store.read_segment(node, record)
            times["read_done"] = env.now

        def writer():
            yield env.timeout(0.5)  # reader is already waiting
            yield store.write_segment(node, record)
            times["write_done"] = env.now

        env.process(reader())
        env.process(writer())
        env.run(until=30.0)
        assert times["read_done"] >= times["write_done"]


# ---------------------------------------------------------------------------
# Engines and the switch state machine
# ---------------------------------------------------------------------------

class TestEngineSwitch:
    def test_unknown_engine_rejected(self):
        switch = EngineSwitch("bonds")
        with pytest.raises(KeyError, match="no engine"):
            switch.switch_to("carrier-pigeon")

    def test_transitions_recorded(self):
        switch = EngineSwitch("bonds")
        switch.set_state(SPILLING, 1.0)
        switch.set_state(SPILLING, 2.0)  # no-op: same state
        switch.set_state(REPLAYING, 3.0)
        switch.set_state(LIVE, 4.0)
        assert switch.transitions == [
            (1.0, LIVE, SPILLING),
            (3.0, SPILLING, REPLAYING),
            (4.0, REPLAYING, LIVE),
        ]

    def test_file_engine_put_is_idempotent_per_timestep(self):
        env = Environment()
        store = SpillStore(env)
        engine = FileEngine(env, store, stub_node(), stage="bonds")

        def flow():
            yield engine.put(chunk(0))
            yield engine.put(chunk(0))  # duplicate: durable no-op

        env.process(flow())
        env.run(until=30.0)
        assert len(engine.ledger) == 1
        assert store.durable_count == 1


class TestFailoverPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="live_transport"):
            FailoverPolicy(live_transport="pigeon")
        with pytest.raises(ValueError, match="not interceptable"):
            FailoverPolicy(spill_reasons=("credit_collapse",))
        with pytest.raises(ValueError, match="sweep_interval"):
            FailoverPolicy(sweep_interval=0.0)
        with pytest.raises(ValueError, match="subscriber_window"):
            FailoverPolicy(subscriber_window=0)


# ---------------------------------------------------------------------------
# Pipeline-level failover: spill instead of shed, replay to catch up
# ---------------------------------------------------------------------------

def drain_spill(pipe, budget=600.0):
    env = pipe.env
    deadline = env.now + budget
    while env.now < deadline and pipe.spill_ledger.pending():
        env.run(until=min(env.now + 30.0, deadline))


class TestFailoverPipeline:
    @pytest.fixture(scope="class")
    def run(self):
        env = Environment()
        pipe = build_failover_pipeline(env, steps=12, seed=1)
        plan = overload_burst_plan(1, pipe)
        if plan.events:
            pipe.arm_faults(plan)
        finished = pipe.run(settle=600)
        drain_spill(pipe)
        return SimpleNamespace(pipe=pipe, finished=finished)

    def test_zero_shed_full_delivery(self, run):
        pipe = run.pipe
        assert run.finished
        assert pipe.shed_ledger.steps() == set(), pipe.shed_ledger.by_reason()
        assert pipe.spill_ledger.pending() == []
        delivered = {ts for _, ts, _ in pipe.end_to_end}
        assert delivered == set(range(pipe.driver.workload.total_steps))

    def test_spills_happened_and_settled(self, run):
        ledger = run.pipe.spill_ledger
        assert len(ledger) > 0
        assert set(ledger.by_status()) <= {"replayed", "superseded"}

    def test_handover_no_gap_no_dup(self, run):
        fo = run.pipe.failover
        assert fo.handovers, "catch-up never handed over to the live stream"
        claimed = set()
        for handover in fo.handovers:
            expected = set(handover["expected"])
            settled = set(handover["replayed"]) | set(handover["superseded"])
            assert settled == expected, handover
            assert not (claimed & expected), "seq settled by two handovers"
            claimed |= expected
            assert handover["order"] == sorted(handover["order"])

    def test_protocols_in_control_trace(self, run):
        protocols = {t.protocol for t in run.pipe.control_trace.records}
        assert "replay_catchup" in protocols
        # spill_engage only fires on credit collapse, which this seed's
        # burst may or may not produce — but if it ran, it must have
        # finished or compensated cleanly, never wedged.
        for trace in run.pipe.control_trace.records:
            if trace.protocol in ("replay_catchup", "spill_engage"):
                assert trace.status in ("committed", "aborted", "exited"), trace

    def test_switch_state_machine_closed(self, run):
        """Every switch ends LIVE and every departure from LIVE was closed
        by a matching return."""
        for switch in run.pipe.failover.switches.values():
            assert switch.state == LIVE
            for time, src, dst in switch.transitions:
                assert src in (LIVE, SPILLING, REPLAYING)
                assert dst in (LIVE, SPILLING, REPLAYING)

    def test_spec_transport_sst_runs_clean(self):
        """transport: sst selects the streaming engine as the live
        transport; the same failover scenario still loses nothing."""
        from repro.spec.build import build as build_spec, load_preset

        env = Environment()
        spec = load_preset("failover").override(
            workload=dict(steps=8), builder=dict(seed=1), transport="sst"
        )
        pipe = build_spec(env, spec)
        finished = pipe.run(settle=600)
        drain_spill(pipe)
        assert finished
        assert pipe.failover.policy.live_transport == "sst"
        for switch in pipe.failover.switches.values():
            assert switch.current == "sst"
        assert pipe.shed_ledger.steps() == set()
        delivered = {ts for _, ts, _ in pipe.end_to_end}
        assert delivered == set(range(pipe.driver.workload.total_steps))


# ---------------------------------------------------------------------------
# Cold-start consumer (satellite: replay full history, bit-match)
# ---------------------------------------------------------------------------

class TestColdStartConsumer:
    def test_cold_start_bit_matches_always_attached(self):
        """A consumer attaching mid-run replays the full history from the
        file engine, then rejoins the live stream at the watermark — its
        final sequence bit-matches a consumer attached from the start."""
        env = Environment()
        stream = SstStream(env, name="live")
        always = stream.subscribe("always", window=4)
        store = SpillStore(env)
        tee = FileEngine(env, store, stub_node(), stage="history")
        total = 10
        results = {}

        def produce():
            for ts in range(total):
                c = chunk(ts)
                yield tee.put(c)  # durable history first, then the stream
                yield stream.publish(c, {"ts": ts})
                yield env.timeout(1.0)

        def consume_always():
            got = []
            for _ in range(total):
                c, _attrs = yield always.get()
                got.append((c.timestep, c.nbytes))
            results["always"] = got

        def consume_cold_start():
            yield env.timeout(4.5)  # attach mid-run
            # Subscribe *before* replaying so nothing published during the
            # catch-up is missed; the watermark splits history from live.
            sub = stream.subscribe("cold", window=4)
            watermark = tee.ledger.records[-1].seq
            history = yield tee.read_history(stub_node(), upto_seq=watermark)
            got = [(r.timestep, r.nbytes) for r in history]
            while len(got) < total:
                c, _attrs = yield sub.get()
                if c.timestep > watermark:  # no duplicate at the seam
                    got.append((c.timestep, c.nbytes))
            results["cold"] = got

        env.process(produce())
        env.process(consume_always())
        env.process(consume_cold_start())
        env.run(until=200.0)
        assert results["always"] == [(ts, 1e6) for ts in range(total)]
        assert results["cold"] == results["always"]

    def test_mid_run_viz_launch_triggers_catchup(self):
        """Interactive launch on a failover pipeline requests a catch-up:
        the spill backlog drains and nothing is lost, even though the
        consumer set changed mid-run."""
        env = Environment()
        pipe = build_failover_pipeline(env, steps=12, seed=1)
        plan = overload_burst_plan(1, pipe)
        if plan.events:
            pipe.arm_faults(plan)

        def ctl(env):
            yield env.timeout(100)
            yield pipe.launch_stage(VIZ_COMPONENT, units=1, upstream="csym",
                                    name="viz")

        env.process(ctl(env))
        finished = pipe.run(settle=600)
        drain_spill(pipe)
        assert finished
        assert "viz" in pipe.containers
        assert pipe.spill_ledger.pending() == []
        assert pipe.shed_ledger.steps() == set()
        delivered = {ts for _, ts, _ in pipe.end_to_end}
        assert delivered == set(range(pipe.driver.workload.total_steps))
