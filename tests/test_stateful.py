"""Tests for stateful-analytics support in the resize protocols."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.evpath import Message, MessageType
from repro.smartpointer.component import (
    FRAGMENTS_COMPONENT,
    SMARTPOINTER_COMPONENTS,
    ComponentSpec,
)
from repro.smartpointer.costs import ComputeModel


class TestSpecStateModel:
    def test_stateless_components_have_no_state(self):
        for spec in SMARTPOINTER_COMPONENTS.values():
            assert not spec.stateful
            assert spec.state_bytes(1_000_000) == 0.0

    def test_fragments_state_scales_with_atoms(self):
        small = FRAGMENTS_COMPONENT.state_bytes(1_000)
        big = FRAGMENTS_COMPONENT.state_bytes(1_000_000)
        assert big == pytest.approx(1000 * small)
        assert small == pytest.approx(8_000)  # 8 B/atom labeling


def build_with_fragments(env, fragments_units=3, steps=12):
    """helper -> bonds -> fragments pipeline (the CTH-style chain)."""
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16,
                             spare_staging_nodes=3,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 6, ComputeModel.ROUND_ROBIN, upstream="helper"),
    ]
    builder = PipelineBuilder(env, wl, stages=stages, seed=0,
                              control_interval=10_000)
    pipe = builder.build()

    def launch(env):
        yield env.timeout(1)
        yield pipe.launch_stage(FRAGMENTS_COMPONENT, units=fragments_units,
                                upstream="bonds", name="fragments")

    env.process(launch(env))
    return pipe


class TestStatefulResize:
    def test_increase_migrates_state(self):
        env = Environment()
        pipe = build_with_fragments(env, fragments_units=2)

        def ctl(env):
            yield env.timeout(60)
            yield pipe.global_manager.increase("fragments", 1)

        env.process(ctl(env))
        pipe.run(settle=300)
        # Find the fragments increase (the launch itself is also an increase
        # but has no donors yet, so no state moves there).
        records = [r for r in pipe.tracer.of("increase")
                   if r.container == "fragments"]
        assert len(records) == 2
        launch_record, grow_record = records
        assert "state_migration" not in launch_record.breakdown
        assert grow_record.breakdown["state_migration"] > 0
        assert grow_record.messages["state_migration"] == 1

    def test_decrease_merges_state_into_survivors(self):
        env = Environment()
        pipe = build_with_fragments(env, fragments_units=3)

        def ctl(env):
            yield env.timeout(60)
            yield pipe.global_manager.decrease("fragments", 2)

        env.process(ctl(env))
        pipe.run(settle=300)
        record = [r for r in pipe.tracer.of("decrease")
                  if r.container == "fragments"][0]
        assert record.breakdown["state_migration"] > 0
        assert record.messages["state_migration"] == 2
        assert pipe.containers["fragments"].units == 1

    def test_stateless_resize_has_no_migration(self):
        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=16,
                                 spare_staging_nodes=3,
                                 output_interval=15.0, total_steps=8)
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
            StageConfig("bonds", 6, ComputeModel.ROUND_ROBIN, upstream="helper"),
            StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        ]
        pipe = PipelineBuilder(env, wl, stages=stages, seed=0,
                               control_interval=10_000).build()

        def ctl(env):
            yield env.timeout(30)
            yield pipe.global_manager.increase("bonds", 2)
            yield pipe.global_manager.decrease("bonds", 2)

        env.process(ctl(env))
        pipe.run(settle=300)
        for record in pipe.tracer.records:
            assert "state_migration" not in record.breakdown

    def test_state_migration_cost_scales_with_state(self):
        """Bigger state, longer migration: the cost is real data movement."""
        def run(ratio):
            spec = ComponentSpec(
                name="fragments",
                complexity="O(n)",
                compute_models=(ComputeModel.ROUND_ROBIN,),
                dynamic_branching=False,
                cost=FRAGMENTS_COMPONENT.cost,
                output_ratio=0.15,
                stateful=True,
                state_ratio=ratio,
            )
            env = Environment()
            pipe = build_with_fragments(env, fragments_units=2)
            # Swap the spec post-launch (same name, bigger state).
            def ctl(env):
                yield env.timeout(60)
                container = pipe.containers["fragments"]
                object.__setattr__(container, "spec", spec)
                yield pipe.global_manager.increase("fragments", 1)

            env.process(ctl(env))
            pipe.run(settle=300)
            record = [r for r in pipe.tracer.of("increase")
                      if r.container == "fragments"][-1]
            return record.breakdown.get("state_migration", 0.0)

        assert run(4.0) > run(0.5)

    def test_fragments_pipeline_processes_everything(self):
        env = Environment()
        pipe = build_with_fragments(env, fragments_units=3, steps=12)
        pipe.run(settle=600)
        assert pipe.containers["fragments"].completions == 12
        frag_files = [f for f in pipe.fs.files if f.name.startswith("fragments.")]
        assert frag_files
        assert frag_files[0].attributes["provenance"] == ["helper", "bonds", "fragments"]
