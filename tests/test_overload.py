"""Overload robustness: credits, shed accounting, and the brownout ladder."""

import pytest

from repro.simkernel import Environment, Store
from repro.data import DataChunk
from repro.datatap import DataTapLink, DataTapReader, DataTapWriter
from repro.overload import DegradationTrace, LinkCredits, ShedLedger


def chunk(ts=0, nbytes=1000):
    return DataChunk(timestep=ts, nbytes=nbytes, natoms=10)


class TestShedLedger:
    def test_unknown_reason_rejected(self):
        ledger = ShedLedger()
        with pytest.raises(ValueError, match="unknown shed reason"):
            ledger.record(0, "bonds", "because", 1.0)

    def test_records_accumulate_by_step(self):
        ledger = ShedLedger()
        assert ledger.record(3, "lammps", "backpressure_stride", 10.0)
        assert ledger.record(5, "bonds", "container_stride", 12.0, chunk_id=7)
        assert ledger.steps() == {3, 5}
        assert ledger.by_reason() == {
            "backpressure_stride": 1, "container_stride": 1,
        }
        assert ledger.shed_fraction(10) == pytest.approx(0.2)

    def test_delivered_steps_suppressed(self):
        delivered = {4}
        ledger = ShedLedger(is_delivered=delivered.__contains__)
        assert not ledger.record(4, "bonds", "offline_prune", 20.0)
        assert ledger.record(5, "bonds", "offline_prune", 20.0)
        assert ledger.suppressed == 1
        assert ledger.steps() == {5}

    def test_same_decision_multiple_records_is_one_decision(self):
        # an offline flush touches each writer's fragment of the step:
        # several records, one decision — not a double-count
        ledger = ShedLedger()
        ledger.record(2, "csym", "offline_prune", 30.0, chunk_id=1)
        ledger.record(2, "csym", "offline_prune", 30.0, chunk_id=2)
        assert ledger.decisions() == {2: {("csym", "offline_prune")}}
        assert len(ledger) == 2


class FakeWriter:
    def __init__(self, name, link):
        self.name = name
        self.link = link
        self.paused = False
        self._pending_meta = []
        self.pushed = []

    def needs_delivery(self, chunk_id):
        return True

    def spawn_metadata_push(self, chunk):
        self.pushed.append(chunk.chunk_id)


class TestLinkCredits:
    def make(self, window=2):
        env = Environment()
        link = type("L", (), {"name": "l"})()
        credits = LinkCredits(env, link, window=window)
        return env, link, credits

    def test_window_gates_acquisition(self):
        _, _, credits = self.make(window=2)
        a, b, c = chunk(0), chunk(1), chunk(2)
        assert credits.try_acquire("w", a.chunk_id)
        assert credits.try_acquire("w", b.chunk_id)
        assert not credits.try_acquire("w", c.chunk_id)
        assert credits.outstanding == 2

    def test_redispatch_rides_existing_credit(self):
        _, _, credits = self.make(window=1)
        a = chunk(0)
        assert credits.try_acquire("w", a.chunk_id)
        # the same chunk re-dispatched (recovery) does not need a new credit
        assert credits.try_acquire("w", a.chunk_id)
        assert credits.outstanding == 1

    def test_release_pumps_deferred_in_order(self):
        _, link, credits = self.make(window=1)
        writer = FakeWriter("w", link)
        a, b, c = chunk(0), chunk(1), chunk(2)
        assert credits.try_acquire("w", a.chunk_id)
        credits.defer(writer, b)
        credits.defer(writer, c)
        assert credits.backlog == 2
        credits.release(a.chunk_id)
        assert writer.pushed == [b.chunk_id]
        credits.release(b.chunk_id)
        assert writer.pushed == [b.chunk_id, c.chunk_id]

    def test_release_is_idempotent(self):
        _, _, credits = self.make(window=1)
        a = chunk(0)
        credits.try_acquire("w", a.chunk_id)
        credits.release(a.chunk_id)
        credits.release(a.chunk_id)  # bypassing traffic completing: no-op
        assert credits.outstanding == 0

    def test_resize_floors_at_min_window_and_pumps(self):
        _, link, credits = self.make(window=1)
        writer = FakeWriter("w", link)
        a, b = chunk(0), chunk(1)
        credits.try_acquire("w", a.chunk_id)
        credits.defer(writer, b)
        credits.resize(0)
        assert credits.window == 1
        credits.resize(4)
        assert writer.pushed == [b.chunk_id]

    def test_paused_writer_defers_to_pending_meta(self):
        _, link, credits = self.make(window=1)
        writer = FakeWriter("w", link)
        writer.paused = True
        a, b = chunk(0), chunk(1)
        credits.try_acquire("w", a.chunk_id)
        credits.defer(writer, b)
        credits.release(a.chunk_id)
        # pump hands the chunk to the pause backlog instead of pushing
        assert writer.pushed == []
        assert writer._pending_meta == [b]

    def test_forget_writer_drops_credits_and_queue(self):
        _, link, credits = self.make(window=1)
        gone = FakeWriter("gone", link)
        stays = FakeWriter("stays", link)
        a, b, c = chunk(0), chunk(1), chunk(2)
        credits.try_acquire("gone", a.chunk_id)
        credits.defer(gone, b)
        credits.defer(stays, c)
        credits.forget_writer("gone")
        assert credits.outstanding == 1  # stays' chunk got the freed credit
        assert stays.pushed == [c.chunk_id]
        assert gone.pushed == []


class TestCreditsOnRealLink:
    def test_window_throttles_metadata_but_all_deliver(self, env, machine, messenger):
        link = DataTapLink(env, messenger, "credited-link")
        writer = DataTapWriter(env, messenger, machine.nodes[0], name="w0")
        link.add_writer(writer)
        queue = Store(env, capacity=8, name="q0")
        reader = DataTapReader(env, messenger, machine.nodes[4], "r0", queue)
        link.add_reader(reader)
        link.credits = LinkCredits(env, link, window=1)
        got = []

        def producer(env):
            for ts in range(4):
                yield writer.write(chunk(ts=ts, nbytes=1e6))

        def consumer(env):
            while True:
                c = yield queue.get()
                got.append(c.timestep)

        env.process(producer(env))
        env.process(consumer(env))
        env.run(until=60)
        # every chunk still arrives exactly once, in order...
        assert got == [0, 1, 2, 3]
        # ...but at most one was ever in flight: the rest were deferred
        assert link.credits.deferred_total >= 3
        assert link.credits.outstanding == 0


class TestDegradationTrace:
    def test_levels_and_intervals(self):
        trace = DegradationTrace()
        assert not trace.degraded and not trace.fully_restored
        trace.record(10.0, "backpressure", "stride_up", 1, stride=2)
        assert trace.degraded
        trace.record(20.0, "brownout", "stride", 1)
        trace.record(30.0, "brownout", "undo_stride", 0)
        assert trace.degraded  # backpressure still above 0
        trace.record(40.0, "backpressure", "stride_down", 0, stride=1)
        assert not trace.degraded
        assert trace.fully_restored
        assert trace.time_in_degraded() == pytest.approx(30.0)

    def test_recovery_dwell_measures_last_unwind(self):
        trace = DegradationTrace()
        trace.record(10.0, "brownout", "stride", 1)
        trace.record(50.0, "brownout", "undo_stride", 0)
        assert trace.recovery_dwell == pytest.approx(40.0)

    def test_reentry_opens_new_interval(self):
        trace = DegradationTrace()
        trace.record(10.0, "brownout", "steal", 1)
        trace.record(20.0, "brownout", "undo_steal", 0)
        trace.record(100.0, "brownout", "offline", 1)
        trace.record(130.0, "brownout", "undo_offline", 0)
        assert trace.time_in_degraded() == pytest.approx(40.0)
        assert trace.fully_restored


@pytest.fixture(scope="module")
def overload_result():
    from repro.experiments.figures import run_overload

    return run_overload(seed=1, steps=24)


class TestOverloadAcceptance:
    """The PR's acceptance scenario: a burst that wedges the unmanaged
    producer degrades gracefully under management and fully restores."""

    def test_burst_wedges_the_unmanaged_producer(self, overload_result):
        baseline = overload_result["unmanaged"]
        assert not baseline["finished"]
        assert baseline["blocked_seconds"] > 100.0

    def test_managed_run_degrades_and_fully_restores(self, overload_result):
        managed = overload_result["managed"]
        assert managed["finished"]
        assert managed["fully_restored"], managed["degradation_steps"]
        assert managed["final_stride"] == 1
        assert managed["offline_containers"] == []
        assert overload_result["ok"]

    def test_ladder_escalates_and_unwinds_in_order(self, overload_result):
        steps = overload_result["managed"]["degradation_steps"]
        brownout = [s for s in steps if s["kind"] == "brownout"]
        assert any(s["action"] in ("steal", "stride", "offline", "increase")
                   for s in brownout)
        undos = [s for s in brownout if s["action"].startswith("undo_")]
        assert undos, "ladder never de-escalated"
        # the trace ends fully unwound: the last brownout step is level 0
        assert brownout[-1]["level"] == 0
        # backpressure raised the driver stride and brought it back down
        bp = [s for s in steps if s["kind"] == "backpressure"]
        assert any(s["action"] == "stride_up" for s in bp)
        assert bp[-1]["detail"]["stride"] == 1

    def test_every_timestep_has_exactly_one_fate(self, overload_result):
        managed = overload_result["managed"]
        assert managed["unaccounted_steps"] == []
        assert managed["delivered_steps"] + managed["shed_steps"] == 24

    def test_sla_holds_for_delivered_steps(self, overload_result):
        assert overload_result["managed"]["sla_compliance_pct"] >= 90.0


class TestReactivateOrdering:
    def test_credits_reinstalled_before_writers_resume(self):
        """Regression pin for the reactivate race: the credit window must
        be reset *before* the paused writers resume, so the first
        post-recovery dispatch is gated by the fresh window rather than
        going out against the stale (or collapsed) one."""
        from repro.overload.scenario import (
            build_overload_pipeline as build_managed,
            overload_burst_plan,
        )

        env = Environment()
        pipe = build_managed(env, steps=16, seed=1, managed=True)
        plan = overload_burst_plan(1, pipe)
        if plan.events:
            pipe.arm_faults(plan)

        ops = []
        for lname, link in pipe.links.items():
            if link.credits is not None:
                orig_reset = link.credits.reset

                def reset(_orig=orig_reset, _l=lname):
                    ops.append(("reset", _l, env.now))
                    return _orig()

                link.credits.reset = reset
            orig_resume = link.resume_writers

            def resume(_orig=orig_resume, _l=lname):
                ops.append(("resume", _l, env.now))
                return _orig()

            link.resume_writers = resume

        assert pipe.run(settle=600)
        reactivations = [a for a in pipe.global_manager.actions_taken
                         if a.startswith("reactivate")]
        assert reactivations, "burst never pruned+reactivated a stage"
        resets = [i for i, op in enumerate(ops) if op[0] == "reset"]
        assert resets, "reactivate never reset a credit window"
        for i in resets:
            _, lname, at = ops[i]
            following = next(
                (op for op in ops[i + 1:] if op[1] == lname), None
            )
            assert following is not None, ops[i:]
            # the very next touch of this link is the resume, at the same
            # instant — reset-then-resume, never the other way around
            assert following[0] == "resume" and following[2] == at, ops[i:]
