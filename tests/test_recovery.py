"""Integration tests: failure detection, REPLACE recovery, degradation."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.faults import FaultPlan


def build(env, spare=2, steps=10, staging=13, **kwargs):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=staging + spare,
                             spare_staging_nodes=spare,
                             output_interval=15.0, total_steps=steps)
    kwargs.setdefault("control_interval", 10_000)
    kwargs.setdefault("fault_tolerance", True)
    kwargs.setdefault("lease_timeout", 5.0)
    kwargs.setdefault("heartbeat_interval", 1.0)
    return PipelineBuilder(env, wl, seed=0, **kwargs).build()


def crash_plan(node, at=30.0):
    plan = FaultPlan(seed=1)
    plan.node_crash(at, node.node_id)
    return plan


class TestReplace:
    def test_crashed_replica_replaced_from_spare(self):
        env = Environment()
        pipe = build(env, spare=2)
        bonds = pipe.containers["bonds"]
        victim = bonds.replicas[1]  # replicas[0]'s node co-hosts the manager
        pipe.arm_faults(crash_plan(victim.node))

        finished = pipe.run(settle=200)

        assert finished
        assert bonds.units == 4  # capacity restored
        assert victim not in bonds.replicas
        assert all(not r.node.failed for r in bonds.replicas)
        recs = [r for r in pipe.recovery.replacements if r["type"] == "replace"]
        assert len(recs) == 1
        assert recs[0]["container"] == "bonds"
        assert recs[0]["method"] == "spare"
        # Detection happened within the lease after the crash at t=30.
        detector = pipe.managers["bonds"].detector
        assert detector.suspected == set()  # cleared by replacement
        assert 30.0 < recs[0]["suspected_at"] < 30.0 + 3 * 5.0
        assert recs[0]["completed_at"] > recs[0]["suspected_at"]

    def test_no_duplicate_timesteps_after_redelivery(self):
        env = Environment()
        pipe = build(env, spare=2)
        victim = pipe.containers["bonds"].replicas[2]
        pipe.arm_faults(crash_plan(victim.node, at=35.0))

        assert pipe.run(settle=200)

        exits = [ts for _, ts, _ in pipe.end_to_end]
        assert exits, "pipeline delivered nothing"
        assert len(exits) == len(set(exits)), "duplicate timesteps delivered"
        # Chained custody: every timestep delivered exactly once, including
        # any that were mid-flight (queued, in service, or produced but not
        # yet pulled downstream) on the crashed node.
        total = pipe.driver.workload.total_steps
        assert set(exits) == set(range(total)), "timesteps lost in the crash"

    def test_empty_spare_pool_steals_from_donor(self):
        env = Environment()
        pipe = build(env, spare=0)
        # Stealing requires a donor with headroom; pin the estimate so the
        # test exercises the recovery ladder, not the sizing model.
        pipe.managers["bonds"].headroom = lambda sla: 3
        csym = pipe.containers["csym"]
        victim = csym.replicas[1]
        pipe.arm_faults(crash_plan(victim.node))

        assert pipe.run(settle=250)

        recs = [r for r in pipe.recovery.replacements if r["type"] == "replace"]
        assert len(recs) == 1
        assert recs[0]["method"] == "steal:bonds"
        assert csym.units == 3  # restored at the donor's expense
        assert pipe.containers["bonds"].units == 3

    def test_stateful_replacement_remigrates_state(self, monkeypatch):
        from repro.containers.pipeline import StageConfig
        from repro.smartpointer.component import (
            FRAGMENTS_COMPONENT,
            SMARTPOINTER_COMPONENTS,
        )
        from repro.smartpointer.costs import ComputeModel

        monkeypatch.setitem(
            SMARTPOINTER_COMPONENTS, "fragments", FRAGMENTS_COMPONENT
        )
        env = Environment()
        stages = [
            StageConfig("helper", 4, ComputeModel.TREE),
            StageConfig("fragments", 3, ComputeModel.ROUND_ROBIN,
                        upstream="helper"),
        ]
        pipe = build(env, spare=2, staging=7, stages=stages)
        frags = pipe.containers["fragments"]
        victim = frags.replicas[1]
        pipe.arm_faults(crash_plan(victim.node))

        pipe.run(settle=200)

        replaces = pipe.tracer.of("replace")
        assert len(replaces) == 1
        record = replaces[0]
        assert record.breakdown.get("state_migration", 0.0) > 0.0
        assert any("state snapshot" in r for r in record.rounds)
        assert frags.units == 3

    def test_degrades_to_offline_when_no_capacity(self):
        env = Environment()
        pipe = build(env, spare=0)
        pipe.recovery._pick_donor = lambda exclude: None  # nobody can donate
        victim = pipe.containers["csym"].replicas[1]
        pipe.arm_faults(crash_plan(victim.node))

        pipe.run(settle=200)

        assert "csym" in pipe.recovery.degraded
        assert pipe.containers["csym"].offline
        recs = [r for r in pipe.recovery.replacements if r["type"] == "degrade"]
        assert recs and recs[0]["reason"] == "no replacement node"


class TestManagerRecovery:
    def test_manager_rehosted_then_replica_replaced(self):
        env = Environment()
        pipe = build(env, spare=2, monitor_interval=5.0,
                     manager_lease_timeout=20.0)
        bonds = pipe.containers["bonds"]
        manager = pipe.managers["bonds"]
        victim = bonds.replicas[0]  # co-hosts the local manager
        dead_node = victim.node
        assert manager.node is dead_node
        pipe.arm_faults(crash_plan(victim.node, at=40.0))

        assert pipe.run(settle=300)

        kinds = {r["type"] for r in pipe.recovery.replacements}
        assert "manager_rehost" in kinds
        assert manager.node is not dead_node
        assert not manager.node.failed
        assert manager.endpoint.node is manager.node
        # After the rehost the replica detector resumes and surfaces the
        # co-hosted replica's death through the normal REPLACE path.
        assert "replace" in kinds
        assert bonds.units == 4


class TestAbortPaths:
    def test_increase_aborts_when_target_node_dies(self):
        env = Environment()
        pipe = build(env, spare=0, fault_tolerance=False)
        gm = pipe.global_manager
        out = {}

        def ctl(env):
            yield env.timeout(1)
            freed = yield gm.decrease("bonds", 1)
            freed[0].fail()  # dies between the decrease and the increase
            res = yield gm.increase("csym", 1, nodes=freed)
            out["res"] = res
            out["node"] = freed[0]

        env.process(ctl(env))
        pipe.run(settle=120)
        assert out["res"]["aborted"] is True
        assert out["node"] in pipe.scheduler.failed_nodes
        assert out["node"] not in pipe.scheduler._free
        assert pipe.containers["csym"].units == 3  # recipient untouched
        assert any("increase csym aborted" in a for a in gm.actions_taken)

    def test_steal_aborts_and_returns_survivors_to_pool(self):
        env = Environment()
        pipe = build(env, spare=0, fault_tolerance=False)
        gm = pipe.global_manager
        out = {}
        orig_decrease = gm.decrease

        def sabotaged(name, count):
            def proc():
                freed = yield orig_decrease(name, count)
                for node in freed:
                    node.fail()  # donor's nodes die mid-trade
                return freed
            return env.process(proc())

        gm.decrease = sabotaged

        def ctl(env):
            yield env.timeout(1)
            out["res"] = yield gm.steal("bonds", "csym", 1)

        env.process(ctl(env))
        pipe.run(settle=120)
        assert out["res"] == []
        assert pipe.containers["csym"].units == 3
        assert any("returned to spare pool" in a for a in gm.actions_taken)
        assert len(pipe.scheduler.failed_nodes) == 1


class TestReplayIdentity:
    def test_identical_seed_identical_run(self):
        results = []
        for _ in range(2):
            env = Environment()
            pipe = build(env, spare=2)
            victim = pipe.containers["bonds"].replicas[1]
            plan = FaultPlan(seed=7)
            plan.node_crash(30.0, victim.node.node_id)
            plan.node_slowdown(60.0, pipe.containers["csym"]
                               .replicas[0].node.node_id,
                               factor=2.0, duration=20.0)
            pipe.arm_faults(plan)
            pipe.run(settle=200)
            results.append({
                "trace": list(pipe.fault_injector.trace),
                "exits": list(pipe.end_to_end),
                "replacements": [
                    (r["type"], r["container"], r.get("method"))
                    for r in pipe.recovery.replacements
                ],
            })
        assert results[0] == results[1]
