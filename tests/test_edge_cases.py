"""Edge-case tests across the stack: teardown races, re-dispatch skips,
resume-after-pull, scheduler accounting, protocol corner cases."""

import pytest

from repro.simkernel import Environment, SimulationError, Store
from repro.cluster import Machine
from repro.data import DataChunk
from repro.datatap import DataTapLink, DataTapReader, DataTapWriter, PullScheduler
from repro.evpath import Messenger


def chunk(ts=0, nbytes=1e6):
    return DataChunk(timestep=ts, nbytes=nbytes, natoms=100)


def rig(env, machine, messenger, n_readers=2, queue_capacity=2):
    link = DataTapLink(env, messenger, "edge-link")
    writer = DataTapWriter(env, messenger, machine.nodes[0], name="ew0")
    link.add_writer(writer)
    readers, queues = [], []
    for i in range(n_readers):
        q = Store(env, capacity=queue_capacity, name=f"eq{i}")
        r = DataTapReader(env, messenger, machine.nodes[4 + i], f"er{i}", q)
        link.add_reader(r)
        readers.append(r)
        queues.append(q)
    return link, writer, readers, queues


class TestReaderTeardownRaces:
    def test_stop_with_inflight_pull_returns_metadata(self, env, machine, messenger):
        """A reader stopped mid-pull hands the metadata back; the chunk is
        still in the writer's buffer and a surviving reader gets it."""
        link, writer, readers, queues = rig(env, machine, messenger,
                                            n_readers=2, queue_capacity=1)

        def scenario(env):
            # Fill reader 0's queue so its next pull blocks on reservation.
            yield writer.write(chunk(0))
            yield writer.write(chunk(1))  # goes to reader 1
            yield writer.write(chunk(2))  # reader 0 again; blocks (q full)
            yield env.timeout(1)
            yield link.pause_writers()
            link.remove_reader(readers[0])
            yield link.resume_writers()

        env.process(scenario(env))
        env.run(until=30)
        # All three chunks were delivered somewhere; none lost or stuck.
        delivered = queues[0].size + queues[1].size
        assert delivered + len(writer.buffer) == 3
        assert len(writer.buffer) == 0 or queues[1].full

    def test_redispatch_skips_already_pulled_chunk(self, env, machine, messenger):
        """If a pull completed despite the teardown, the re-dispatched
        metadata is dropped instead of double-delivering."""
        link, writer, readers, queues = rig(env, machine, messenger,
                                            n_readers=2, queue_capacity=4)

        def scenario(env):
            for ts in range(4):
                yield writer.write(chunk(ts))
            yield env.timeout(2)  # everything pulled already
            yield link.pause_writers()
            link.remove_reader(readers[0])
            yield link.resume_writers()

        env.process(scenario(env))
        env.run(until=30)
        total = queues[0].size + queues[1].size
        assert total == 4  # no duplicates
        assert link.redispatched == 0

    def test_resume_skips_chunks_pulled_while_paused(self, env, machine, messenger):
        """Deferred metadata for chunks that were re-dispatched and pulled
        during the pause must not be re-pushed on resume."""
        link, writer, readers, queues = rig(env, machine, messenger,
                                            n_readers=1, queue_capacity=8)

        def scenario(env):
            yield link.pause_writers()
            yield writer.write(chunk(0))  # deferred metadata
            # Simulate a management path delivering it directly: drop it
            # from the buffer as if pulled.
            writer.buffer.release(writer.buffer.get(
                list(writer.buffer._chunks)[0]).chunk_id)
            yield link.resume_writers()
            yield env.timeout(2)

        env.process(scenario(env))
        env.run(until=30)
        assert queues[0].size == 0  # nothing double-delivered


class TestSchedulerAccounting:
    def test_pull_wait_accrues_under_contention(self, env):
        sched = PullScheduler(env, max_concurrent_pulls=1)

        def puller(env):
            token = yield sched.admit()
            yield env.timeout(2)
            sched.release(token)

        for _ in range(3):
            env.process(puller(env))
        env.run()
        assert sched.total_wait == pytest.approx(2 + 4)

    def test_in_flight_and_queued_counters(self, env):
        sched = PullScheduler(env, max_concurrent_pulls=1)
        snapshots = []

        def holder(env):
            token = yield sched.admit()
            yield env.timeout(5)
            sched.release(token)

        def prober(env):
            yield env.timeout(1)
            env.process(holder(env))  # queued behind the first
            yield env.timeout(1)
            snapshots.append((sched.in_flight, sched.queued))

        env.process(holder(env))
        env.process(prober(env))
        env.run()
        assert snapshots == [(1, 1)]

    def test_validation(self, env):
        with pytest.raises(ValueError):
            PullScheduler(env, max_concurrent_pulls=0)


class TestLinkEdgeCases:
    def test_writer_without_readers_raises_on_push(self, env, machine, messenger):
        link = DataTapLink(env, messenger, "empty")
        writer = DataTapWriter(env, messenger, machine.nodes[0], name="lonely")
        link.add_writer(writer)

        def scenario(env):
            yield writer.write(chunk())
            yield env.timeout(1)

        env.process(scenario(env))
        with pytest.raises(SimulationError, match="no readers"):
            env.run(until=10)

    def test_unknown_writer_lookup(self, env, machine, messenger):
        link = DataTapLink(env, messenger, "l")
        with pytest.raises(SimulationError):
            link.writer_by_name("ghost")

    def test_pause_empty_link_is_noop(self, env, machine, messenger):
        link = DataTapLink(env, messenger, "bare")
        done = []

        def scenario(env):
            elapsed = yield link.pause_writers()
            done.append(elapsed)
            yield link.resume_writers()
            yield link.drain_readers()

        env.process(scenario(env))
        env.run()
        assert done == [0.0]

    def test_double_pause_is_idempotent(self, env, machine, messenger):
        link, writer, readers, queues = rig(env, machine, messenger)

        def scenario(env):
            yield link.pause_writers()
            yield link.pause_writers()
            assert writer.paused
            yield link.resume_writers()
            assert not writer.paused

        env.process(scenario(env))
        env.run(until=10)


class TestWriterEdgeCases:
    def test_pause_count_tracks(self, env, machine, messenger):
        link, writer, readers, queues = rig(env, machine, messenger)

        def scenario(env):
            yield writer.pause()
            yield writer.resume()
            yield writer.pause()

        env.process(scenario(env))
        env.run(until=10)
        assert writer.pause_count == 2

    def test_resume_unpaused_writer_is_noop(self, env, machine, messenger):
        link, writer, readers, queues = rig(env, machine, messenger)
        results = []

        def scenario(env):
            result = yield writer.resume()
            results.append(result)

        env.process(scenario(env))
        env.run(until=10)
        assert results == [False]

    def test_backlog_counts_deferred_metadata(self, env, machine, messenger):
        link, writer, readers, queues = rig(env, machine, messenger)

        def scenario(env):
            yield writer.pause()
            yield writer.write(chunk(0))
            yield writer.write(chunk(1))
            assert writer.backlog == 2

        env.process(scenario(env))
        env.run(until=10)
