"""Unit tests for the interconnect model."""

import networkx as nx
import pytest

from repro.simkernel import Environment
from repro.cluster import Machine, Network, Node
from repro.cluster.machine import torus_3d


class TestTopology:
    def test_torus_shape(self):
        g = torus_3d((2, 2, 2))
        assert g.number_of_nodes() == 8
        # In a 2-wide torus, wraparound and direct edges coincide; each node
        # still has degree 3.
        assert all(d == 3 for _, d in g.degree())

    def test_torus_larger_degree(self):
        g = torus_3d((4, 4, 4))
        assert g.number_of_nodes() == 64
        assert all(d == 6 for _, d in g.degree())

    def test_torus_validation(self):
        with pytest.raises(ValueError):
            torus_3d((0, 2, 2))
        with pytest.raises(ValueError):
            torus_3d((2, 2))


class TestHops:
    def test_flat_network_single_hop(self, env):
        net = Network(env, topology=None)
        assert net.hops(0, 5) == 1
        assert net.hops(3, 3) == 0

    def test_torus_shortest_path(self, env):
        g = torus_3d((4, 4, 4))
        net = Network(env, topology=g)
        assert net.hops(0, 0) == 0
        # Adjacent nodes are one hop.
        neighbor = next(iter(g.neighbors(0)))
        assert net.hops(0, neighbor) == 1

    def test_hops_cached_and_symmetric(self, env):
        net = Network(env, topology=torus_3d((3, 3, 3)))
        assert net.hops(1, 20) == net.hops(20, 1)
        assert (1, 20) in net._hops_cache


class TestTransfer:
    def test_duration_matches_model(self, env):
        m = Machine(env, num_nodes=4, nic_bandwidth=1e9)
        src, dst = m.nodes[0], m.nodes[1]
        nbytes = 1e8
        expected = m.network.ideal_transfer_time(src, dst, nbytes)
        done = []

        def proc(env):
            yield m.network.transfer(src, dst, nbytes)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done[0] == pytest.approx(expected)

    def test_intra_node_transfer_is_cheap(self, env):
        m = Machine(env, num_nodes=2)
        done = []

        def proc(env):
            yield m.network.transfer(m.nodes[0], m.nodes[0], 1e9)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done[0] == m.network.software_overhead

    def test_nic_contention_serializes(self, env):
        m = Machine(env, num_nodes=3, nic_bandwidth=1e9, nic_streams=1)
        src = m.nodes[0]
        done = []

        def proc(env, dst):
            yield m.network.transfer(src, dst, 1e9)  # ~1 s each
            done.append(env.now)

        env.process(proc(env, m.nodes[1]))
        env.process(proc(env, m.nodes[2]))
        env.run()
        # Second transfer waits for the first sender-side NIC channel.
        assert done[1] >= done[0] + 0.9
        assert m.network.stats.wait_time > 0

    def test_negative_size_rejected(self, env):
        m = Machine(env, num_nodes=2)
        env.process(bad(env, m))
        with pytest.raises(ValueError):
            env.run()

    def test_rdma_get_adds_request_latency(self, env):
        m = Machine(env, num_nodes=2)
        reader, target = m.nodes[0], m.nodes[1]
        times = {}

        def push(env):
            start = env.now
            yield m.network.transfer(target, reader, 1e6)
            times["push"] = env.now - start

        def pull(env):
            yield env.timeout(10)
            start = env.now
            yield m.network.rdma_get(reader, target, 1e6)
            times["pull"] = env.now - start

        env.process(push(env))
        env.process(pull(env))
        env.run()
        assert times["pull"] > times["push"]

    def test_stats_accumulate(self, env):
        m = Machine(env, num_nodes=2)

        def proc(env):
            yield m.network.transfer(m.nodes[0], m.nodes[1], 100)
            yield m.network.transfer(m.nodes[0], m.nodes[1], 200)

        env.process(proc(env))
        env.run()
        assert m.network.stats.messages == 2
        assert m.network.stats.bytes == 300
        assert m.nodes[0].nic.bytes_sent == 300
        assert m.nodes[1].nic.bytes_received == 300


def bad(env, m):
    yield m.network.transfer(m.nodes[0], m.nodes[1], -5)
