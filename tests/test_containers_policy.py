"""Unit tests for management policies (pure decision logic)."""

import pytest

from repro.containers.policy import (
    ContainerState,
    Increase,
    LatencyPolicy,
    Offline,
    QueueDerivativePolicy,
    Steal,
)


def state(
    name,
    units=4,
    latency=None,
    latency_est=None,
    queued=0,
    shortfall=0,
    headroom=0,
    occupancy=0.0,
    occupancy_samples=(),
    queue_samples=(),
    essential=False,
    offline=False,
    active=True,
):
    return ContainerState(
        name=name,
        units=units,
        latency_mean=latency,
        latency_est=latency_est if latency_est is not None else latency,
        queued=queued,
        queue_samples=tuple(queue_samples),
        occupancy_samples=tuple(occupancy_samples),
        buffer_occupancy=occupancy,
        shortfall=shortfall,
        headroom=headroom,
        essential=essential,
        offline=offline,
        active=active,
    )


SLA = 15.0


class TestLatencyPolicy:
    def test_no_distress_no_action(self):
        policy = LatencyPolicy()
        states = {"a": state("a", latency=5.0), "b": state("b", latency=10.0)}
        assert policy.decide(states, 4, SLA, now=0, horizon=100) == []

    def test_spares_used_first(self):
        policy = LatencyPolicy()
        states = {"bonds": state("bonds", latency=70.0, shortfall=2)}
        actions = policy.decide(states, spare_nodes=4, sla_interval=SLA, now=0, horizon=100)
        assert actions == [Increase("bonds", 2)]

    def test_steal_when_no_spares(self):
        policy = LatencyPolicy()
        states = {
            "bonds": state("bonds", latency=70.0, shortfall=1),
            "helper": state("helper", latency=5.0, headroom=2),
        }
        actions = policy.decide(states, 0, SLA, now=0, horizon=100)
        assert actions == [Steal("helper", "bonds", 1)]

    def test_spares_then_steal_combined(self):
        policy = LatencyPolicy()
        states = {
            "bonds": state("bonds", latency=70.0, shortfall=3),
            "helper": state("helper", latency=5.0, headroom=2),
        }
        actions = policy.decide(states, 1, SLA, now=0, horizon=100)
        assert actions == [Increase("bonds", 1), Steal("helper", "bonds", 2)]

    def test_largest_headroom_donor_first(self):
        policy = LatencyPolicy()
        states = {
            "bonds": state("bonds", latency=70.0, shortfall=1),
            "helper": state("helper", latency=5.0, headroom=2),
            "csym": state("csym", latency=10.0, headroom=1),
        }
        actions = policy.decide(states, 0, SLA, now=0, horizon=100)
        assert actions == [Steal("helper", "bonds", 1)]

    def test_bottleneck_is_longest_latency_with_need(self):
        policy = LatencyPolicy()
        states = {
            # Over SLA but sustaining: left alone.
            "csym": state("csym", latency=64.0, shortfall=0),
            "bonds": state("bonds", latency=40.0, shortfall=2),
        }
        actions = policy.decide(states, 4, SLA, now=0, horizon=100)
        assert actions == [Increase("bonds", 2)]

    def test_offline_when_nothing_available_and_overflow_imminent(self):
        policy = LatencyPolicy(overflow_occupancy=0.5)
        states = {"bonds": state("bonds", latency=500.0, shortfall=20, occupancy=0.7)}
        actions = policy.decide(states, 0, SLA, now=0, horizon=100)
        assert actions == [Offline("bonds", reason="no resources; overflow imminent")]

    def test_no_offline_for_essential(self):
        policy = LatencyPolicy()
        states = {"helper": state("helper", latency=500.0, shortfall=20,
                                  occupancy=0.9, essential=True)}
        assert policy.decide(states, 0, SLA, now=0, horizon=100) == []

    def test_no_offline_without_overflow_pressure(self):
        policy = LatencyPolicy(overflow_occupancy=0.5)
        states = {"bonds": state("bonds", latency=500.0, shortfall=20, occupancy=0.1)}
        assert policy.decide(states, 0, SLA, now=0, horizon=100) == []

    def test_offline_from_occupancy_trend(self):
        policy = LatencyPolicy(overflow_occupancy=0.9)
        samples = [(0.0, 0.1), (100.0, 0.4)]  # full at ~t=300
        states = {
            "bonds": state("bonds", latency=500.0, shortfall=20, occupancy=0.4,
                           occupancy_samples=samples)
        }
        actions = policy.decide(states, 0, SLA, now=100, horizon=250)
        assert actions and isinstance(actions[0], Offline)
        # Out of horizon -> no offline yet.
        assert policy.decide(states, 0, SLA, now=100, horizon=50) == []

    def test_offline_and_standby_excluded(self):
        policy = LatencyPolicy()
        states = {
            "bonds": state("bonds", latency=70.0, shortfall=1),
            "gone": state("gone", latency=999.0, shortfall=5, offline=True),
            "cna": state("cna", latency=None, active=False, headroom=3),
        }
        # cna (standby) must not be chosen as donor; gone must not be bottleneck.
        assert policy.decide(states, 0, SLA, now=0, horizon=100) == []

    def test_live_estimate_used_when_no_completions(self):
        """A stage that has completed nothing (latency_mean None) but whose
        oldest input is ancient must still be seen as the bottleneck."""
        policy = LatencyPolicy()
        states = {"bonds": state("bonds", latency=None, latency_est=120.0, shortfall=2)}
        actions = policy.decide(states, 4, SLA, now=0, horizon=100)
        assert actions == [Increase("bonds", 2)]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LatencyPolicy(overflow_occupancy=0)
        with pytest.raises(ValueError):
            LatencyPolicy(overflow_occupancy=1.5)


class TestQueueDerivativePolicy:
    def test_reacts_to_queue_growth_before_sla(self):
        policy = QueueDerivativePolicy(growth_threshold=0.005)
        samples = [(0.0, 0.0), (100.0, 5.0)]  # 0.05 chunks/s growth
        states = {
            "bonds": state("bonds", latency=10.0, shortfall=1, queue_samples=samples),
        }
        actions = policy.decide(states, 2, SLA, now=100, horizon=100)
        assert actions == [Increase("bonds", 1)]

    def test_flat_queues_no_action(self):
        policy = QueueDerivativePolicy()
        samples = [(0.0, 3.0), (100.0, 3.0)]
        states = {"bonds": state("bonds", latency=50.0, shortfall=1, queue_samples=samples)}
        assert policy.decide(states, 2, SLA, now=100, horizon=100) == []

    def test_steals_like_latency_policy(self):
        policy = QueueDerivativePolicy()
        samples = [(0.0, 0.0), (100.0, 5.0)]
        states = {
            "bonds": state("bonds", latency=50.0, shortfall=1, queue_samples=samples),
            "helper": state("helper", latency=5.0, headroom=1),
        }
        actions = policy.decide(states, 0, SLA, now=100, horizon=100)
        assert actions == [Steal("helper", "bonds", 1)]
