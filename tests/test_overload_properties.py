"""Property-based tests for overload shed accounting.

The generalized exactly-once claim under load shedding: for *any* seeded
overload schedule, the delivered timesteps and the shed timesteps exactly
partition the emitted timesteps — no loss (a step with neither fate), no
double-count (a step with both fates, or two distinct shed decisions).
"""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment
from repro.containers.presets import build_failover_pipeline
from repro.overload.scenario import build_overload_pipeline, overload_burst_plan


@given(
    seed=st.integers(min_value=0, max_value=999),
    steps=st.sampled_from([8, 10, 12]),
)
@settings(max_examples=6, deadline=None)
def test_delivered_and_shed_partition_emitted(seed, steps):
    env = Environment()
    pipe = build_overload_pipeline(env, steps=steps, seed=seed, managed=True)
    plan = overload_burst_plan(seed, pipe)
    if plan.events:
        pipe.arm_faults(plan)
    finished = pipe.run(settle=600)

    delivered = {ts for _, ts, _ in pipe.end_to_end}
    shed = pipe.shed_ledger.steps()

    # no double-count: a delivered step is never also attributed to a shed
    # decision, and no step carries two distinct shed decisions
    assert delivered & shed == set(), sorted(delivered & shed)
    for step, decisions in pipe.shed_ledger.decisions().items():
        assert len(decisions) == 1, (step, decisions)

    # no loss: once the driver finished, every emitted step has a fate
    if finished:
        emitted = set(range(pipe.driver.workload.total_steps))
        assert delivered | shed == emitted, sorted(emitted - delivered - shed)


@given(
    seed=st.integers(min_value=0, max_value=999),
    steps=st.sampled_from([8, 10, 12]),
)
@settings(max_examples=6, deadline=None)
def test_delivered_shed_spilled_partition_emitted(seed, steps):
    """The failover generalization of the partition property: with the
    degrade-to-disk layer attached, every emitted timestep's fate is
    delivered, shed, or spilled — and the shed and spill ledgers never
    both claim a step (one fate, even across the intercept seam)."""
    env = Environment()
    pipe = build_failover_pipeline(env, steps=steps, seed=seed)
    plan = overload_burst_plan(seed, pipe)
    if plan.events:
        pipe.arm_faults(plan)
    finished = pipe.run(settle=600)
    if finished:
        # bounded drain: give the replay backlog time to settle
        deadline = env.now + 600.0
        while env.now < deadline and pipe.spill_ledger.pending():
            env.run(until=min(env.now + 30.0, deadline))

    delivered = {ts for _, ts, _ in pipe.end_to_end}
    shed = pipe.shed_ledger.steps()
    spilled = pipe.spill_ledger.steps()

    # one fate: shed and spilled are disjoint, and a delivered step never
    # also carries a shed decision
    assert shed & spilled == set(), sorted(shed & spilled)
    assert delivered & shed == set(), sorted(delivered & shed)
    # a spilled step may also be delivered — but only via a settled
    # replay/supersede, never while the segment is still pending
    for step in sorted(delivered & spilled):
        record = pipe.spill_ledger.record_for(step)
        assert record.status in ("replayed", "superseded"), record
    # a replayed step really was delivered
    for step in sorted(pipe.spill_ledger.replayed_steps()):
        assert step in delivered, step

    # no loss: every emitted step has at least one fate
    if finished:
        emitted = set(range(pipe.driver.workload.total_steps))
        fates = delivered | shed | spilled
        assert fates == emitted, sorted(emitted - fates)
