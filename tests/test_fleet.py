"""Tests for repro.fleet: quota policy, arbiter grant/steal/deny paths,
node-conservation audits, and whole-fleet determinism."""

import dataclasses
import json

import pytest

from repro.simkernel import Environment, shuffle
from repro.simkernel.errors import SimulationError
from repro.cluster import BatchScheduler, Machine
from repro.fleet import (
    FleetArbiter,
    FleetDSTScenario,
    TenantQuota,
    TenantSpec,
    build_fleet,
    build_mixed_fleet,
    fleet_plan,
    mixed_specs,
)


class _FakeGM:
    """The arbiter only needs ``gm.scheduler`` (plus the ``tenant`` /
    ``arbiter`` attributes ``register`` installs)."""

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.tenant = "default"
        self.arbiter = None


def make_arbiter(env, spares=2, tenants=("a", "b"), priorities=None,
                 pool=4, reserved=2, burst=None):
    """A bare arbiter over fake GMs: each tenant gets ``pool`` nodes."""
    machine = Machine(env, num_nodes=spares + pool * len(tenants))
    spare_nodes = list(machine.partition("spares", spares).nodes)
    arb = FleetArbiter(env, spare_nodes, rebalance_interval=0)
    gms = {}
    for i, name in enumerate(tenants):
        part = machine.partition(name, pool)
        sched = BatchScheduler(env, part, label=f"fleet.{name}")
        gm = _FakeGM(sched)
        prio = priorities[i] if priorities else 1
        arb.register(name, gm, TenantQuota(
            reserved=reserved, burst=burst or pool + max(spares, 4),
            priority=prio,
        ))
        gms[name] = gm
    return machine, arb, gms


def actions(arb):
    return [(action, tenant, count) for _, action, tenant, count in arb.trace]


class TestTenantQuota:
    def test_negative_reserved_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota(reserved=-1, burst=4)

    def test_burst_below_reserved_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota(reserved=4, burst=3)

    def test_frozen(self):
        quota = TenantQuota(reserved=2, burst=4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            quota.reserved = 0


class TestArbiterGrants:
    def test_grant_from_spares_marks_borrowed(self, env):
        _, arb, gms = make_arbiter(env, spares=2)
        granted = arb.request("a", 1)
        assert len(granted) == 1
        sched = gms["a"].scheduler
        assert granted[0] in sched.pool.nodes
        assert sched.is_borrowed(granted[0])
        assert len(arb.spares) == 1
        assert actions(arb) == [("grant", "a", 1)]
        assert arb.violations == []

    def test_register_wires_gm(self, env):
        _, arb, gms = make_arbiter(env, spares=1)
        assert gms["a"].tenant == "a"
        assert gms["a"].arbiter is arb

    def test_duplicate_tenant_rejected(self, env):
        _, arb, gms = make_arbiter(env, spares=1)
        with pytest.raises(SimulationError, match="already registered"):
            arb.register("a", gms["a"], TenantQuota(reserved=0, burst=9))

    def test_nonpositive_request_rejected(self, env):
        _, arb, _ = make_arbiter(env, spares=1)
        with pytest.raises(ValueError):
            arb.request("a", 0)

    def test_race_for_last_spare_is_deterministic(self, env):
        """Two equal-priority tenants contending for the one remaining
        spare: the first request wins it, the second is denied (no steal
        between equal priorities) — and the decision log says exactly that."""
        _, arb, gms = make_arbiter(env, spares=1)
        assert arb.available_to("a") == 1
        assert arb.available_to("b") == 1  # both *see* the spare...
        won = arb.request("a", 1)
        gms["a"].scheduler.allocate_specific(won, "work")  # ...and use it
        lost = arb.request("b", 1)  # the loser finds the pool dry
        assert len(won) == 1 and lost == []
        assert actions(arb) == [("grant", "a", 1), ("deny", "b", 1)]
        assert arb.available_to("b") == 0
        assert arb.violations == []

    def test_idle_loan_is_reclaimable_by_the_next_requester(self, env):
        """The flip side of the race: if the winner parks its grant idle,
        the loser's request reclaims it — idle loans are fleet property."""
        _, arb, gms = make_arbiter(env, spares=1)
        [node] = arb.request("a", 1)
        assert arb.request("b", 1) == [node]
        assert actions(arb) == [
            ("grant", "a", 1), ("reclaim", "a", 1), ("grant", "b", 1),
        ]
        assert arb.violations == []

    def test_burst_ceiling_caps_grant(self, env):
        _, arb, _ = make_arbiter(env, spares=4, pool=4, burst=5)
        granted = arb.request("a", 3)  # headroom is only 5 - 4 = 1
        assert len(granted) == 1
        assert ("deny", "a", 2) in actions(arb)
        assert arb.holdings("a") == 5
        assert arb.violations == []

    def test_failed_spare_never_granted_but_still_counted(self, env):
        _, arb, _ = make_arbiter(env, spares=2)
        arb.spares[0].fail()
        assert arb.live_spares() == 1
        granted = arb.request("a", 2)
        assert len(granted) == 1 and not granted[0].failed
        # the dead spare stays on the arbiter's books: conservation holds
        assert arb.violations == []


class TestArbiterStealsAndReclaims:
    def test_steal_from_lower_priority_respects_floor(self, env):
        _, arb, gms = make_arbiter(
            env, spares=0, priorities=(1, 2), pool=4, reserved=2,
        )
        granted = arb.request("b", 3)
        # only down to a's reserved floor: 4 - 2 = 2 nodes stealable
        assert len(granted) == 2
        assert arb.holdings("a") == 2
        assert actions(arb) == [
            ("steal", "a", 1), ("steal", "a", 1),
            ("grant", "b", 2), ("deny", "b", 1),
        ]
        assert arb.violations == []

    def test_no_steal_between_equal_priorities(self, env):
        _, arb, _ = make_arbiter(env, spares=0, priorities=(2, 2))
        assert arb.request("b", 1) == []
        assert actions(arb) == [("deny", "b", 1)]

    def test_steal_skips_busy_and_failed_nodes(self, env):
        _, arb, gms = make_arbiter(
            env, spares=0, priorities=(1, 2), pool=4, reserved=0,
        )
        sched_a = gms["a"].scheduler
        sched_a.allocate(2, name="work")       # busy: not stealable
        sched_a.mark_failed(sched_a.peek_free()[0])  # dead: not stealable
        granted = arb.request("b", 4)
        assert len(granted) == 1
        assert not granted[0].failed
        assert arb.violations == []

    def test_reclaim_idle_loan_before_stealing(self, env):
        """A loan parked idle at one tenant is fleet property: it services
        the next request even when the spare pool is dry."""
        _, arb, gms = make_arbiter(env, spares=1)
        [node] = arb.request("a", 1)
        assert len(arb.spares) == 0
        granted = arb.request("b", 1)
        assert granted == [node]
        assert gms["b"].scheduler.is_borrowed(node)
        assert node not in gms["a"].scheduler.pool.nodes
        assert ("reclaim", "a", 1) in actions(arb)
        assert arb.violations == []

    def test_give_back_returns_loan_to_spares(self, env):
        _, arb, gms = make_arbiter(env, spares=1)
        granted = arb.request("a", 1)
        arb.give_back("a", granted)
        assert granted[0] in arb.spares
        assert granted[0] not in gms["a"].scheduler.pool.nodes
        assert actions(arb)[-1] == ("return", "a", 1)
        assert arb.violations == []

    def test_rebalance_loop_sweeps_idle_loans(self):
        env = Environment()
        machine = Machine(env, num_nodes=6)
        spare_nodes = list(machine.partition("spares", 2).nodes)
        arb = FleetArbiter(env, spare_nodes, rebalance_interval=30.0)
        sched = BatchScheduler(env, machine.partition("a", 4), label="fleet.a")
        arb.register("a", _FakeGM(sched), TenantQuota(reserved=2, burst=9))
        arb.request("a", 2)
        assert len(arb.spares) == 0
        env.run(until=31)
        assert len(arb.spares) == 2
        arb.stop()
        assert arb.violations == []


class TestSchedulerAdoptExpel:
    def test_adopt_expel_roundtrip(self, env, machine):
        pool = machine.partition("p", 4)
        outside = machine.partition("q", 2)
        sched = BatchScheduler(env, pool)
        sched.adopt(list(outside.nodes))
        assert sched.free_nodes == 6
        assert all(sched.is_borrowed(n) for n in outside.nodes)
        assert sched.free_borrowed() == list(outside.nodes)
        sched.expel(list(outside.nodes))
        assert sched.free_nodes == 4
        assert not any(sched.is_borrowed(n) for n in outside.nodes)

    def test_adopt_duplicate_rejected(self, env, machine):
        pool = machine.partition("p", 4)
        sched = BatchScheduler(env, pool)
        with pytest.raises(SimulationError, match="already"):
            sched.adopt([pool[0]])

    def test_expel_busy_node_rejected(self, env, machine):
        pool = machine.partition("p", 4)
        sched = BatchScheduler(env, pool)
        job = sched.allocate(4, name="work")
        with pytest.raises(SimulationError):
            sched.expel([job.nodes[0]])

    def test_occupancy_counts_borrowed(self, env, machine):
        sched = BatchScheduler(env, machine.partition("p", 4))
        sched.adopt(list(machine.partition("q", 2).nodes))
        sched.allocate(3, name="work")
        occ = sched.occupancy()
        assert occ == {"pool": 6, "free": 3, "busy": 3,
                       "failed": 0, "borrowed": 2}


class TestFleetBuild:
    def test_mixed_specs_shape(self):
        specs = mixed_specs(5)
        assert [s.preset for s in specs] == [
            "overload", "fig7", "s3d", "fig7", "s3d",
        ]
        assert specs[0].overload_burst and specs[0].priority == 1
        assert all(s.priority == 2 for s in specs[1:])

    def test_unknown_preset_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="unknown fleet preset"):
            build_fleet(env, [TenantSpec(name="x", preset="nope")])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            build_fleet(Environment(), [])

    def test_duplicate_tenant_name_rejected(self):
        env = Environment()
        specs = [TenantSpec(name="a", preset="s3d", steps=2),
                 TenantSpec(name="a", preset="s3d", steps=2)]
        # rejected upfront, before any machine node is carved
        with pytest.raises(ValueError, match="duplicate tenant name"):
            build_fleet(env, specs)

    def test_partitions_are_tenant_prefixed(self):
        env = Environment(tie_breaker=shuffle(0))
        fleet = build_mixed_fleet(env, tenants=2, steps=2)
        names = set(fleet.machine._partitions)
        assert "fleet:spares" in names
        assert {"t00:sim", "t00:staging", "t01:sim", "t01:staging"} <= names
        # no node is owned by two tenants at build time
        census = fleet.node_census()
        owned = census["spares"][:]
        for report in census["tenants"].values():
            owned.extend(report["pool"])
        assert len(owned) == len(set(owned))


class TestFleetRun:
    def test_small_fleet_runs_to_completion(self):
        env = Environment(tie_breaker=shuffle(3))
        fleet = build_mixed_fleet(env, tenants=3, steps=3)
        plan = fleet_plan(3, fleet)
        fleet.arm_faults(plan)
        finished = fleet.run(settle=150)
        assert all(finished.values())
        assert fleet.arbiter.violations == []
        for summary in fleet.summaries():
            assert summary["delivered"] + summary["shed"] == 3, summary

    def test_dst_scenario_deterministic_replay(self):
        reports = []
        for _ in range(2):
            report = FleetDSTScenario(tenants=3, steps=3).run(seed=11)
            reports.append(json.dumps(report.as_dict(), sort_keys=True))
        assert reports[0] == reports[1]

    def test_dst_scenario_invariants_green(self):
        report = FleetDSTScenario(tenants=3, steps=3).run(seed=5)
        assert report.ok, report.violations

    def test_fleet_invariants_registered(self):
        from repro.dst.invariants import INVARIANTS

        assert "no_cross_tenant_node_leak" in INVARIANTS
        assert "quota_conservation" in INVARIANTS


class TestFleetValidation:
    def test_aggregate_floors_beyond_capacity_rejected_upfront(self):
        # two s3d tenants = 2 x 11 staging + 4 spares = 26 nodes of
        # conservable capacity; floors of 14 each (28) can never all hold
        env = Environment()
        specs = [
            TenantSpec(name="a", preset="s3d", steps=2,
                       quota=TenantQuota(reserved=14, burst=20)),
            TenantSpec(name="b", preset="s3d", steps=2,
                       quota=TenantQuota(reserved=14, burst=20)),
        ]
        with pytest.raises(ValueError, match="aggregate quota floors"):
            build_fleet(env, specs, spares=4)

    def test_register_rejects_unfillable_floors_on_legacy_path(self):
        # direct arbiter registration (no build_fleet) hits the same check
        env = Environment()
        machine = Machine(env, num_nodes=10)
        spare_nodes = list(machine.partition("spares", 2).nodes)
        arb = FleetArbiter(env, spare_nodes, rebalance_interval=0)
        sched_a = BatchScheduler(env, machine.partition("a", 4), label="fleet.a")
        arb.register("a", _FakeGM(sched_a), TenantQuota(reserved=2, burst=8))
        sched_b = BatchScheduler(env, machine.partition("b", 4), label="fleet.b")
        with pytest.raises(SimulationError, match="aggregate quota floors"):
            # pool so far = 2 spares + 4 + 4 = 10; floors 2 + 9 = 11
            arb.register("b", _FakeGM(sched_b), TenantQuota(reserved=9, burst=9))
        # the failed registration left no partial state behind
        assert "b" not in arb.tenants
        assert arb._expected_total == 6

    def test_tenant_spec_overlay(self):
        spec = TenantSpec(
            name="t07", preset="fig7", steps=5, priority=2,
            overrides=dict(staging_nodes=13, spare=0),
        ).to_spec()
        assert spec.workload.steps == 5
        assert spec.workload.staging_nodes == 13
        assert spec.workload.spare == 0
        assert spec.builder["seed"] == 1  # the bundled preset's default
        assert spec.tenant.priority == 2
        assert spec.tenant.reserved is None  # derived from the built pool
        spec.validate()
