"""Tests for topology-aware container placement (the future-work extension)."""

import pytest

from repro.simkernel import Environment
from repro.cluster import Machine, franklin
from repro.cluster.machine import torus_3d
from repro.containers.placement import (
    NaivePlacement,
    Placement,
    PlacementProblem,
    TopologyAwarePlacement,
    mean_hops,
    placement_cost,
)


def torus_machine(env, side=4):
    return Machine(env, num_nodes=side**3, topology=torus_3d((side, side, side)))


class TestProblemValidation:
    def test_demand_exceeds_candidates(self, env):
        m = torus_machine(env)
        problem = PlacementProblem(
            stages={"a": 10}, edges=[], candidate_nodes=m.nodes[:5]
        )
        with pytest.raises(ValueError):
            problem.validate()

    def test_unknown_edge_stage(self, env):
        m = torus_machine(env)
        problem = PlacementProblem(
            stages={"a": 1}, edges=[("a", "ghost", 1.0)], candidate_nodes=m.nodes[:4]
        )
        with pytest.raises(ValueError):
            problem.validate()

    def test_negative_volume(self, env):
        m = torus_machine(env)
        problem = PlacementProblem(
            stages={"a": 1, "b": 1}, edges=[("a", "b", -1.0)],
            candidate_nodes=m.nodes[:4],
        )
        with pytest.raises(ValueError):
            problem.validate()


class TestCostModel:
    def test_mean_hops_symmetric(self, env):
        m = torus_machine(env)
        a, b = m.nodes[:3], m.nodes[10:13]
        assert mean_hops(m, a, b) == mean_hops(m, b, a)

    def test_colocated_zero_cost(self, env):
        m = torus_machine(env)
        problem = PlacementProblem(
            stages={"a": 1, "b": 1}, edges=[("a", "b", 100.0)],
            candidate_nodes=m.nodes[:8],
        )
        same = {"a": [m.nodes[0]], "b": [m.nodes[0]]}
        assert placement_cost(m, problem, same) == 0.0

    def test_cost_scales_with_volume(self, env):
        m = torus_machine(env)
        assignment = {"a": [m.nodes[0]], "b": [m.nodes[5]]}
        low = placement_cost(
            m,
            PlacementProblem({"a": 1, "b": 1}, [("a", "b", 1.0)], m.nodes[:8]),
            assignment,
        )
        high = placement_cost(
            m,
            PlacementProblem({"a": 1, "b": 1}, [("a", "b", 10.0)], m.nodes[:8]),
            assignment,
        )
        assert high == pytest.approx(10 * low)


class TestPlanners:
    def _problem(self, m, anchor_idx=(0,)):
        """A two-stage chain anchored at given simulation nodes, with
        candidates spread across the torus."""
        candidates = m.nodes[8:]
        return PlacementProblem(
            stages={"helper": 3, "bonds": 4},
            edges=[("sim", "helper", 100.0), ("helper", "bonds", 100.0)],
            candidate_nodes=candidates,
            anchors={"sim": [m.nodes[i] for i in anchor_idx]},
        )

    def test_naive_assigns_in_order(self, env):
        m = torus_machine(env)
        problem = self._problem(m)
        placement = NaivePlacement().plan(m, problem)
        assert [n.node_id for n in placement.nodes_of("helper")] == [8, 9, 10]
        assert len(placement.nodes_of("bonds")) == 4

    def test_topology_aware_beats_naive(self, env):
        """On a torus with the anchor far from the first-fit nodes, the
        greedy planner finds a strictly cheaper layout."""
        m = torus_machine(env, side=5)
        problem = PlacementProblem(
            stages={"helper": 3, "bonds": 4},
            edges=[("sim", "helper", 100.0), ("helper", "bonds", 100.0)],
            candidate_nodes=m.nodes[10:],
            anchors={"sim": [m.nodes[124]]},  # far corner of the torus
        )
        naive = NaivePlacement().plan(m, problem)
        aware = TopologyAwarePlacement().plan(m, problem)
        assert aware.cost < naive.cost

    def test_no_node_double_assigned(self, env):
        m = torus_machine(env)
        placement = TopologyAwarePlacement().plan(m, self._problem(m))
        used = [n.node_id for nodes in placement.assignment.values() for n in nodes]
        assert len(used) == len(set(used))

    def test_all_stages_fully_allocated(self, env):
        m = torus_machine(env)
        problem = self._problem(m)
        placement = TopologyAwarePlacement().plan(m, problem)
        for stage, count in problem.stages.items():
            assert len(placement.nodes_of(stage)) == count

    def test_heavy_consumer_hugs_producer(self, env):
        """The stage with the heaviest edge gets placed closest."""
        m = torus_machine(env, side=5)
        anchor = m.nodes[0]
        problem = PlacementProblem(
            stages={"heavy": 2, "light": 2},
            edges=[("sim", "heavy", 1000.0), ("sim", "light", 1.0)],
            candidate_nodes=m.nodes[1:],
            anchors={"sim": [anchor]},
        )
        placement = TopologyAwarePlacement().plan(m, problem)
        heavy_hops = mean_hops(m, placement.nodes_of("heavy"), [anchor])
        light_hops = mean_hops(m, placement.nodes_of("light"), [anchor])
        assert heavy_hops <= light_hops


class TestBuilderIntegration:
    def test_pipeline_with_topology_placement_runs(self):
        from repro import Environment, PipelineBuilder, WeakScalingWorkload

        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=8)
        pipe = PipelineBuilder(env, wl, seed=0, placement="topology").build()
        pipe.run(settle=200)
        assert pipe.containers["csym"].completions == 8
        assert pipe.driver.blocked_time == 0.0

    def test_unknown_placement_rejected(self):
        from repro import Environment, PipelineBuilder, WeakScalingWorkload

        env = Environment()
        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13)
        with pytest.raises(ValueError):
            PipelineBuilder(env, wl, placement="psychic")
