"""Unit tests for the event primitives."""

import pytest

from repro.simkernel import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_succeed_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_sets_failed(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        assert ev.failed
        assert not ev.ok

    def test_unhandled_failure_surfaces(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        env.run()  # no raise

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        env.run()
        assert seen == ["x"]
        assert ev.processed


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(5.0)
        env.run()
        assert env.now == 5.0
        assert t.processed

    def test_carries_value(self, env):
        results = []

        def proc(env):
            value = yield env.timeout(1.0, value="done")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["done"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_ok(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed and env.now == 0.0


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        log = []

        def proc(env):
            t1, t2 = env.timeout(1), env.timeout(3)
            yield env.all_of([t1, t2])
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [3.0]

    def test_any_of_fires_on_first(self, env):
        log = []

        def proc(env):
            t1, t2 = env.timeout(1), env.timeout(3)
            result = yield env.any_of([t1, t2])
            log.append((env.now, t1 in result, t2 in result))

        env.process(proc(env))
        env.run()
        assert log == [(1.0, True, False)]

    def test_unfired_timeout_not_in_condition_value(self, env):
        """Regression: Timeout carries its value from creation; an unfired
        deadline must not appear in an AnyOf result."""
        results = {}

        def proc(env):
            ev = env.event()
            deadline = env.timeout(100)
            env.process(trigger_soon(env, ev))
            result = yield ev | deadline
            results["deadline_present"] = deadline in result
            results["event_present"] = ev in result

        def trigger_soon(env, ev):
            yield env.timeout(1)
            ev.succeed("val")

        env.process(proc(env))
        env.run(until=10)
        assert results == {"deadline_present": False, "event_present": True}

    def test_and_operator(self, env):
        done = []

        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]

    def test_condition_value_maps_events(self, env):
        captured = {}

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            result = yield env.all_of([t1, t2])
            captured.update({t1: result[t1], t2: result[t2]})

        env.process(proc(env))
        env.run()
        assert list(captured.values()) == ["a", "b"]

    def test_failed_constituent_fails_condition(self, env):
        outcome = []

        def failer(env, ev):
            yield env.timeout(1)
            ev.fail(RuntimeError("inner"))

        def proc(env):
            ev = env.event()
            env.process(failer(env, ev))
            try:
                yield env.all_of([ev, env.timeout(5)])
            except RuntimeError as e:
                outcome.append(str(e))

        env.process(proc(env))
        env.run()
        assert outcome == ["inner"]

    def test_cross_environment_condition_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env1.timeout(1), env2.timeout(1)])

    def test_empty_any_of_fires_immediately(self, env):
        done = []

        def proc(env):
            yield env.any_of([])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.0]
