"""Tests for fragment detection and tracking (the CTH use case)."""

import numpy as np
import pytest

from repro.lammps import hex_lattice
from repro.lammps.crack import BOND_CUTOFF, CrackExperiment
from repro.smartpointer import bonds_adjacency
from repro.smartpointer.fragments import FragmentTracker, find_fragments


def two_clusters(gap=10.0, n_each=20, seed=0):
    """Two well-separated random blobs; bonds never cross the gap."""
    rng = np.random.default_rng(seed)
    a = rng.random((n_each, 2))
    b = rng.random((n_each, 2)) + np.array([gap, 0.0])
    pos = np.vstack([a, b])
    pairs = bonds_adjacency(pos, 1.6, "celllist")
    return pos, pairs


class TestFindFragments:
    def test_intact_lattice_is_one_fragment(self):
        pos, _ = hex_lattice(10, 8)
        pairs = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        labels, count = find_fragments(pairs, len(pos))
        assert count == 1
        assert np.all(labels == 0)

    def test_two_clusters_two_fragments(self):
        pos, pairs = two_clusters()
        labels, count = find_fragments(pairs, len(pos))
        assert count == 2
        assert len(np.unique(labels[:20])) == 1
        assert len(np.unique(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_no_bonds_every_atom_is_a_fragment(self):
        labels, count = find_fragments(np.empty((0, 2), dtype=np.int64), 5)
        assert count == 5
        assert sorted(labels) == [0, 1, 2, 3, 4]

    def test_min_size_filters_debris(self):
        # 3 bonded atoms + 2 isolated ones.
        pairs = np.array([[0, 1], [1, 2]])
        labels, count = find_fragments(pairs, 5, min_size=2)
        assert count == 1
        assert list(labels) == [0, 0, 0, -1, -1]

    def test_empty_system(self):
        labels, count = find_fragments(np.empty((0, 2), dtype=np.int64), 0)
        assert count == 0
        assert len(labels) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            find_fragments(np.empty((0, 2), dtype=np.int64), -1)


class TestFragmentTracker:
    def test_stable_identity_across_epochs(self):
        pos, pairs = two_clusters()
        tracker = FragmentTracker()
        ids0 = tracker.update(pairs, len(pos))
        ids1 = tracker.update(pairs, len(pos))
        np.testing.assert_array_equal(ids0, ids1)
        assert tracker.fragment_count == 2
        assert not [e for e in tracker.events if e.kind != "appear" or e.epoch > 0]

    def test_split_detected(self):
        # Epoch 0: one chain of 6 atoms; epoch 1: the middle bond breaks.
        whole = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
        broken = np.array([[0, 1], [1, 2], [3, 4], [4, 5]])
        tracker = FragmentTracker(min_size=2)
        ids0 = tracker.update(whole, 6)
        ids1 = tracker.update(broken, 6)
        assert tracker.fragment_count == 2
        splits = [e for e in tracker.events if e.kind == "split"]
        assert len(splits) == 1
        # The surviving half keeps the original id.
        assert ids1[0] == ids0[0] or ids1[5] == ids0[5]

    def test_merge_detected(self):
        separate = np.array([[0, 1], [2, 3]])
        joined = np.array([[0, 1], [1, 2], [2, 3]])
        tracker = FragmentTracker(min_size=2)
        ids0 = tracker.update(separate, 4)
        assert tracker.fragment_count == 2
        ids1 = tracker.update(joined, 4)
        assert tracker.fragment_count == 1
        merges = [e for e in tracker.events if e.kind == "merge"]
        assert len(merges) == 1
        assert len(merges[0].fragment_ids) == 2

    def test_vanish_detected(self):
        tracker = FragmentTracker(min_size=2)
        tracker.update(np.array([[0, 1], [2, 3]]), 4)
        tracker.update(np.array([[0, 1]]), 4)  # second pair dissolves
        vanishes = [e for e in tracker.events if e.kind == "vanish"]
        assert len(vanishes) == 1

    def test_largest_heir_keeps_id(self):
        # 5-atom chain splits 4 + 1(debris): the 4-atom side keeps the id.
        whole = np.array([[0, 1], [1, 2], [2, 3], [3, 4]])
        broken = np.array([[0, 1], [1, 2], [2, 3]])
        tracker = FragmentTracker(min_size=2)
        ids0 = tracker.update(whole, 5)
        ids1 = tracker.update(broken, 5)
        assert ids1[0] == ids0[0]
        assert ids1[4] == -1  # debris

    def test_snapshot_restore_roundtrip(self):
        """The stateful-analytics contract: a restored tracker behaves as if
        it had never moved."""
        pos, pairs = two_clusters()
        tracker = FragmentTracker()
        tracker.update(pairs, len(pos))
        state = tracker.snapshot()
        clone = FragmentTracker.restore(state)
        ids_a = tracker.update(pairs, len(pos))
        ids_b = clone.update(pairs, len(pos))
        np.testing.assert_array_equal(ids_a, ids_b)
        assert clone.state_bytes() > 0

    def test_crack_produces_fragments(self):
        """End-to-end on real physics: the notched plate eventually tracks
        as more than one fragment."""
        experiment = CrackExperiment(nx=30, ny=18, md_steps_per_epoch=40)
        tracker = FragmentTracker(min_size=10)
        counts = []
        for _ in range(25):
            frame = experiment.run_epoch()
            pairs = bonds_adjacency(frame.snapshot.positions, BOND_CUTOFF, "celllist")
            tracker.update(pairs, frame.snapshot.natoms)
            counts.append(tracker.fragment_count)
            if frame.broken_fraction > 0.08:
                break
        assert counts[0] == 1
        assert max(counts) >= 2  # the plate separated
        assert any(e.kind == "split" for e in tracker.events)

    def test_validation(self):
        with pytest.raises(ValueError):
            FragmentTracker(min_size=0)
