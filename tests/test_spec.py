"""Tests for repro.spec: the model round-trip, the validation pass, the
bundled preset library, and the byte-identity of spec-built pipelines."""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment, shuffle
from repro.containers.pipeline import PipelineBuilder, StageConfig
from repro.containers.presets import (
    build_overload_pipeline,
    build_s3d_pipeline,
    make_workload,
)
from repro.smartpointer.costs import ComputeModel
from repro.spec import (
    FaultEventSpec,
    FaultSpec,
    PipelineSpec,
    SpecError,
    StageSpec,
    TenantSpecBlock,
    WorkloadSpec,
)
from repro.spec.build import build, bundled_spec_names, load_preset
from repro.spec.fuzz import generate_spec


def _stages(*triples):
    """(name, units, model[, upstream]) tuples -> StageSpec tuple."""
    out = []
    for t in triples:
        name, units, model = t[:3]
        upstream = t[3] if len(t) > 3 else None
        out.append(StageSpec(name, units, model=model, upstream=upstream))
    return tuple(out)


def _spec(**kwargs):
    kwargs.setdefault("name", "t")
    return PipelineSpec(**kwargs)


# -- round-trip -------------------------------------------------------------------


class TestRoundTrip:
    def test_kitchen_sink_round_trips(self):
        spec = PipelineSpec(
            name="everything",
            workload=WorkloadSpec(sim_nodes=128, staging_nodes=12, spare=2,
                                  steps=5, output_interval=10.0),
            stages=_stages(("helper", 4, "tree"),
                           ("bonds", 3, "rr", "helper"),
                           ("cna", 2, "serial", "bonds")),
            builder={"seed": 7, "fault_tolerance": True,
                     "backpressure": {"credit_refresh": 2.0},
                     "control_interval": 30.0},
            sla=4.0,
            faults=FaultSpec(recipe="smoke", seed=3, events=(
                FaultEventSpec(kind="node_crash", time=30.0, targets=(1,)),
            )),
            tenant=TenantSpecBlock(priority=2, reserved=6, burst=14),
        )
        again = PipelineSpec.from_yaml(spec.to_yaml())
        assert again == spec
        assert again.to_yaml() == spec.to_yaml()

    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=50, deadline=None)
    def test_generated_specs_round_trip_loss_free(self, seed):
        spec = generate_spec(seed)
        again = PipelineSpec.from_yaml(spec.to_yaml())
        assert again == spec
        assert again.to_yaml() == spec.to_yaml()

    def test_bundled_specs_round_trip(self):
        assert bundled_spec_names() == [
            "failover", "fig7", "overload", "predictive", "s3d"
        ]
        for name in bundled_spec_names():
            spec = load_preset(name).validate()
            assert PipelineSpec.from_yaml(spec.to_yaml()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown pipeline field"):
            PipelineSpec.from_dict({"name": "x", "colour": "red"})
        with pytest.raises(SpecError, match="unknown stage field"):
            PipelineSpec.from_dict(
                {"name": "x", "stages": [{"name": "a", "units": 1, "cpus": 4}]}
            )

    def test_save_load(self, tmp_path):
        path = tmp_path / "p.yaml"
        spec = generate_spec(11)
        spec.save(path)
        assert PipelineSpec.load(path) == spec


# -- validation -------------------------------------------------------------------


class TestValidation:
    def test_cycle_rejected(self):
        spec = _spec(stages=_stages(("helper", 4, "tree"),
                                    ("bonds", 2, "rr", "cna"),
                                    ("cna", 2, "rr", "bonds")))
        with pytest.raises(SpecError, match="cycle"):
            spec.validate()

    def test_dangling_upstream_rejected(self):
        spec = _spec(stages=_stages(("helper", 4, "tree"),
                                    ("bonds", 2, "rr", "ghost")))
        with pytest.raises(SpecError, match="unknown upstream stage 'ghost'"):
            spec.validate()

    def test_zero_unit_stage_rejected(self):
        spec = _spec(stages=_stages(("helper", 0, "tree")))
        with pytest.raises(SpecError, match="units must be >= 1"):
            spec.validate()

    def test_multiple_roots_rejected(self):
        spec = _spec(stages=_stages(("helper", 4, "tree"), ("bonds", 2, "rr")))
        with pytest.raises(SpecError, match="multiple root stages"):
            spec.validate()

    def test_non_tree_root_rejected(self):
        spec = _spec(stages=_stages(("bonds", 2, "rr")))
        with pytest.raises(SpecError, match="must use the 'tree' compute model"):
            spec.validate()

    def test_unsupported_compute_model_rejected(self):
        spec = _spec(stages=_stages(("cna", 2, "parallel")))
        with pytest.raises(SpecError, match="does not support"):
            spec.validate()

    def test_staging_overflow_rejected(self):
        spec = _spec(
            workload=WorkloadSpec(staging_nodes=5),
            stages=_stages(("helper", 4, "tree"), ("bonds", 4, "rr", "helper")),
        )
        with pytest.raises(SpecError, match="staging nodes"):
            spec.validate()

    def test_unknown_builder_key_rejected(self):
        with pytest.raises(SpecError, match="unknown builder key"):
            _spec(builder={"warp_factor": 9}).validate()

    def test_buffer_below_one_step_rejected(self):
        with pytest.raises(SpecError, match="below one timestep per writer"):
            _spec(builder={"sim_buffer_bytes": 1024.0}).validate()
        with pytest.raises(SpecError, match="below one timestep"):
            _spec(builder={"stage_buffer_bytes": 1024.0}).validate()

    def test_tenant_floor_beyond_capacity_rejected(self):
        spec = _spec(tenant=TenantSpecBlock(reserved=99, burst=100))
        with pytest.raises(SpecError, match="exceeds the tenant's own"):
            spec.validate()

    def test_fault_target_out_of_range_rejected(self):
        spec = _spec(faults=FaultSpec(events=(
            FaultEventSpec(kind="node_crash", time=10.0, targets=(40,)),
        )))
        with pytest.raises(SpecError, match="outside"):
            spec.validate()

    def test_unknown_fault_recipe_rejected(self):
        with pytest.raises(SpecError, match="unknown fault recipe"):
            _spec(faults=FaultSpec(recipe="gremlins")).validate()

    def test_planted_invalid_yaml_rejected_with_pointed_error(self, tmp_path):
        # the acceptance check: a spec wired to an unknown stage fails with
        # an error that names the stage and the known alternatives
        path = tmp_path / "bad.yaml"
        path.write_text(
            "name: planted\n"
            "stages:\n"
            "- {name: helper, units: 4, model: tree}\n"
            "- {name: bonds, units: 2, upstream: helpr}\n"
        )
        with pytest.raises(SpecError) as err:
            build(Environment(), PipelineSpec.load(path))
        assert "helpr" in str(err.value) and "helper" in str(err.value)


# -- build ------------------------------------------------------------------------


def _trace(pipe):
    return (
        pipe.node_census(),
        pipe.telemetry.events,
        sorted((step, round(lat, 9)) for _, step, lat in pipe.end_to_end),
    )


class TestBuild:
    def test_fig7_spec_matches_legacy_builder_byte_for_byte(self):
        def via_spec():
            env = Environment(tie_breaker=shuffle(5))
            pipe = build(env, load_preset("fig7").override(
                workload=dict(steps=3)))
            pipe.run(settle=60)
            return _trace(pipe)

        def via_legacy_kwargs():
            env = Environment(tie_breaker=shuffle(5))
            wl = make_workload(steps=3)
            pipe = PipelineBuilder(
                env, wl, seed=1, control_interval=30.0, fault_tolerance=True,
                heartbeat_interval=1.0, lease_timeout=5.0,
            ).build()
            pipe.run(settle=60)
            return _trace(pipe)

        assert via_spec() == via_legacy_kwargs()

    def test_s3d_spec_matches_legacy_builder_byte_for_byte(self):
        from repro.s3d.components import S3D_COMPONENTS

        def via_spec():
            env = Environment(tie_breaker=shuffle(2))
            pipe = build_s3d_pipeline(env, steps=2)
            pipe.run(settle=60)
            return _trace(pipe)

        def via_legacy_kwargs():
            env = Environment(tie_breaker=shuffle(2))
            wl = make_workload(staging_nodes=11, spare=2, steps=2)
            stages = [
                StageConfig("reduce", 3, ComputeModel.TREE, upstream=None,
                            component_spec=S3D_COMPONENTS["reduce"]),
                StageConfig("front", 4, ComputeModel.ROUND_ROBIN,
                            upstream="reduce",
                            component_spec=S3D_COMPONENTS["front"]),
                StageConfig("track", 2, ComputeModel.ROUND_ROBIN,
                            upstream="front",
                            component_spec=S3D_COMPONENTS["track"]),
            ]
            pipe = PipelineBuilder(env, wl, seed=0, stages=stages).build()
            pipe.run(settle=60)
            return _trace(pipe)

        assert via_spec() == via_legacy_kwargs()

    def test_build_attaches_spec(self):
        env = Environment()
        spec = load_preset("s3d")
        pipe = build(env, spec)
        assert pipe.spec == spec

    def test_non_datatap_transport_rejected(self):
        spec = _spec(transport="posix")
        with pytest.raises(SpecError, match="datatap"):
            build(Environment(), spec)

    def test_override_overlay(self):
        base = load_preset("overload")
        derived = base.override(
            workload=dict(steps=4),
            builder=dict(control_interval=1e9),
            drop_builder=("backpressure", "brownout"),
        )
        # the base spec is untouched (frozen value semantics)
        assert base.builder["backpressure"] is True
        assert derived.workload.steps == 4
        assert "backpressure" not in derived.builder
        assert derived.builder["control_interval"] == 1e9


# -- the overload buffer-override footgun ------------------------------------------


class TestOverloadResizeGuard:
    def test_buffer_override_warns_without_allow_resize(self):
        env = Environment()
        with pytest.warns(UserWarning, match="allow_resize"):
            build_overload_pipeline(env, steps=2, sim_buffer_bytes=2**30)

    def test_allow_resize_silences_the_warning(self):
        env = Environment()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_overload_pipeline(env, steps=2, sim_buffer_bytes=2**30,
                                    allow_resize=True)
