"""Property-based tests over the full pipeline.

The core invariant the containers framework promises: **no timestep is ever
lost**, whatever the workload, allocation, or management actions.  Every
emitted timestep either exits the pipeline or lands on disk with provenance.
"""

from hypothesis import given, settings, strategies as st

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel


@given(
    sim_nodes=st.sampled_from([128, 256, 384, 512, 768, 1024]),
    steps=st.integers(min_value=5, max_value=25),
    spare=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
@settings(max_examples=12, deadline=None)
def test_no_timestep_ever_lost(sim_nodes, steps, spare, seed):
    env = Environment()
    wl = WeakScalingWorkload(
        sim_nodes=sim_nodes,
        staging_nodes=13 + spare,
        spare_staging_nodes=spare,
        output_interval=15.0,
        total_steps=steps,
    )
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 4, ComputeModel.ROUND_ROBIN, upstream="helper"),
        StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
        StageConfig("cna", 2, ComputeModel.ROUND_ROBIN, upstream="bonds", standby=True),
    ]
    pipe = PipelineBuilder(env, wl, stages=stages, seed=seed).build()
    pipe.run(settle=900)

    exited = {ts for _, ts, _ in pipe.end_to_end}
    on_disk = {f.attributes.get("timestep") for f in pipe.fs.files}
    in_queues = set()
    in_buffers = set()
    for container in pipe.containers.values():
        for replica in container.replicas:
            if replica.passive:
                continue
            in_queues.update(c.timestep for c in replica.queue.items)
            if replica.current_chunk is not None:
                in_queues.add(replica.current_chunk.timestep)
            for fragments in replica._gather.values():
                in_queues.update(c.timestep for c in fragments)
        if container.input_link is not None:
            for writer in container.input_link.writers:
                in_buffers.update(
                    c.timestep for c in writer.buffer._chunks.values()
                )
    covered = exited | on_disk | in_queues | in_buffers
    assert set(range(steps)) <= covered


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=8, deadline=None)
def test_node_conservation_under_management(seed):
    """Nodes held by containers + standby + spare pool is constant across
    any sequence of management actions."""
    env = Environment()
    wl = WeakScalingWorkload(
        sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4,
        output_interval=15.0, total_steps=25,
    )
    pipe = PipelineBuilder(env, wl, seed=seed).build()

    def total():
        held = sum(c.units for c in pipe.containers.values())
        held += sum(
            len(c.standby_nodes) for c in pipe.containers.values() if not c.active
        )
        return held + pipe.scheduler.free_nodes

    before = total()
    pipe.run(settle=300)
    assert total() == before


@given(crack_step=st.integers(min_value=1, max_value=15))
@settings(max_examples=6, deadline=None)
def test_branch_preserves_coverage(crack_step):
    """With the dynamic branch firing at any step, every timestep is still
    analyzed by exactly one of CSym (pre-branch) or CNA (post-branch), or
    accounted for on disk."""
    env = Environment()
    wl = WeakScalingWorkload(
        sim_nodes=256, staging_nodes=13, output_interval=15.0, total_steps=20,
    )
    pipe = PipelineBuilder(env, wl, seed=3, crack_step=crack_step).build()
    pipe.run(settle=900)
    assert pipe.branch_fired
    analyzed = {f.attributes.get("timestep") for f in pipe.fs.files}
    analyzed |= {ts for _, ts, _ in pipe.end_to_end}
    assert set(range(20)) <= analyzed
