"""Tests for the seeded topology fuzzer and its DST wiring."""

from collections import Counter

import pytest

from repro.spec import PipelineSpec
from repro.spec.fuzz import (
    MAX_FANOUT,
    MAX_STAGES,
    MAX_UNITS,
    FuzzedTopologyScenario,
    SpecFileScenario,
    generate_spec,
)


class TestGenerator:
    def test_same_seed_is_bit_identical(self):
        for seed in (0, 1, 7, 0xDEADBEEF, 2**63 - 1):
            a, b = generate_spec(seed), generate_spec(seed)
            assert a == b
            assert a.to_yaml() == b.to_yaml()

    def test_seeds_actually_vary_the_shape(self):
        shapes = {generate_spec(seed).to_yaml() for seed in range(16)}
        assert len(shapes) > 8

    def test_every_generated_spec_validates(self):
        for seed in range(30):
            generate_spec(seed).validate()

    def test_generator_bounds_hold(self):
        for seed in range(30):
            spec = generate_spec(seed)
            assert 1 <= len(spec.stages) <= MAX_STAGES
            assert all(1 <= s.units <= MAX_UNITS for s in spec.stages)
            roots = [s for s in spec.stages if s.upstream is None]
            assert len(roots) == 1
            assert roots[0].model == "tree"
            fan = Counter(s.upstream for s in spec.stages
                          if s.upstream is not None)
            assert all(n <= MAX_FANOUT for n in fan.values())
            assert spec.workload.sim_nodes in (64, 128)
            assert 4 <= spec.workload.steps <= 6

    def test_steps_override(self):
        assert generate_spec(9, steps=4).workload.steps == 4


class TestFuzzDST:
    def test_clean_sweep_quick(self):
        sc = FuzzedTopologyScenario()
        for seed in range(4):
            report = sc.run(seed)
            assert report.ok, (seed, report.violations)
            assert report.finished

    def test_same_seed_replays_identically(self):
        sc = FuzzedTopologyScenario()
        assert sc.run(3).as_dict() == sc.run(3).as_dict()

    def test_repro_command_names_the_fuzz_scenario(self):
        sc = FuzzedTopologyScenario()
        assert "fuzz" in sc.run(0).repro

    @pytest.mark.slow
    def test_hundred_seed_sweep_is_violation_free(self):
        sc = FuzzedTopologyScenario()
        bad = {}
        for seed in range(100):
            report = sc.run(seed)
            if not (report.ok and report.finished):
                bad[seed] = [str(v) for v in report.violations]
        assert bad == {}


class TestSpecFileScenario:
    def test_sweeps_a_spec_from_disk(self, tmp_path):
        path = tmp_path / "gen.yaml"
        generate_spec(5, steps=4).save(path)
        sc = SpecFileScenario(path=str(path))
        report = sc.run(1)
        assert report.ok, report.violations
        assert str(path) in report.repro

    def test_missing_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            SpecFileScenario().run(0)

    def test_loaded_spec_round_trips(self, tmp_path):
        path = tmp_path / "gen.yaml"
        spec = generate_spec(21)
        spec.save(path)
        assert PipelineSpec.load(path) == spec
