"""Tests for D2T transactions: commit, abort, crashes, scalability, trades."""

import pytest

from repro.simkernel import Environment
from repro.cluster import Machine
from repro.evpath import Messenger
from repro.transactions import FailureInjector, TransactionManager, TxnGroup, TxnParticipant


def rig(env, n_nodes=24, injector=None, **kwargs):
    machine = Machine(env, num_nodes=n_nodes)
    messenger = Messenger(env, machine.network)
    tm = TransactionManager(env, messenger, machine.nodes[-1], injector=injector, **kwargs)
    return machine, messenger, tm


def run_one(env, tm, groups):
    results = []

    def proc(env):
        out = yield tm.run(groups)
        results.append(out)

    env.process(proc(env))
    env.run(until=env.now + 60)
    return results[0]


class TestGroupTree:
    def test_tree_structure(self, env):
        machine, messenger, tm = rig(env)
        group = tm.build_group("g", machine.nodes[:9], fanout=2)
        assert group.root.name == "g-p0"
        assert len(group.root.children) == 2
        total = sum(1 + len(p.children) for p in group.participants)  # sanity
        assert len(group.participants) == 9

    def test_depth_logarithmic(self, env):
        machine, messenger, tm = rig(env)
        small = tm.build_group("s", machine.nodes[:4], fanout=4)
        big = tm.build_group("b", machine.nodes[4:20], fanout=2)
        assert small.depth() <= 1
        assert big.depth() >= 3

    def test_empty_group_rejected(self):
        from repro.simkernel.errors import SimulationError

        with pytest.raises(SimulationError):
            TxnGroup("empty", [])

    def test_fanout_validation(self, env):
        machine, messenger, tm = rig(env)
        participants = [
            TxnParticipant(env, messenger, machine.nodes[0], "solo-p0")
        ]
        with pytest.raises(ValueError):
            TxnGroup("g", participants, fanout=1)


class TestCommitPath:
    def test_all_vote_commit(self, env):
        machine, messenger, tm = rig(env)
        wg = tm.build_group("w", machine.nodes[:8])
        rg = tm.build_group("r", machine.nodes[8:12])
        out = run_one(env, tm, [wg, rg])
        assert out.committed
        assert out.acks_complete
        for group in (wg, rg):
            assert all(p.committed == [out.txn_id] for p in group.participants)

    def test_vote_fn_can_abort(self, env):
        machine, messenger, tm = rig(env)
        group = tm.build_group("g", machine.nodes[:4], vote_fn=lambda txn: False)
        out = run_one(env, tm, [group])
        assert not out.committed
        assert all(p.aborted for p in group.participants)

    def test_single_abort_vote_aborts_all(self, env):
        injector = FailureInjector()
        machine, messenger, tm = rig(env, injector=injector)
        group = tm.build_group("g", machine.nodes[:8], fanout=2)
        # Learn the txn id deterministically by injecting for the next id.
        import repro.transactions.coordinator as coord_mod

        next_id = next(coord_mod._TXN_IDS)
        coord_mod._TXN_IDS = iter([next_id + 1, next_id + 2, next_id + 3])
        injector.inject("g-p5", next_id + 1, "abort")
        out = run_one(env, tm, [group])
        assert not out.committed
        assert ("g-p5", out.txn_id) in injector.triggered
        # Every reachable participant learned the abort decision.
        assert all(p.aborted == [out.txn_id] for p in group.participants)


class TestFailures:
    def _with_fault(self, env, victim, behaviour, vote_timeout=2.0):
        injector = FailureInjector()
        machine, messenger, tm = rig(env, injector=injector, vote_timeout=vote_timeout)
        group = tm.build_group("g", machine.nodes[:4], fanout=2)
        import repro.transactions.coordinator as coord_mod

        probe = next(coord_mod._TXN_IDS)
        coord_mod._TXN_IDS = iter(range(probe + 1, probe + 10))
        injector.inject(victim, probe + 1, behaviour)
        return tm, group

    def test_root_crash_presumed_abort(self, env):
        tm, group = self._with_fault(env, "g-p0", "crash")
        out = run_one(env, tm, [group])
        assert not out.committed
        assert out.timed_out_groups == ["g"]
        assert out.vote_phase >= 2.0  # waited for the timeout

    def test_leaf_crash_presumed_abort(self, env):
        tm, group = self._with_fault(env, "g-p3", "crash")
        out = run_one(env, tm, [group])
        assert not out.committed

    def test_crash_after_vote_still_decides(self, env):
        tm, group = self._with_fault(env, "g-p1", "crash_after_vote", vote_timeout=5.0)
        out = run_one(env, tm, [group])
        assert out.committed  # votes were all yes
        assert not out.acks_complete  # but the subtree never acked

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            FailureInjector().inject("x", 1, "explode")


class TestScalability:
    def test_fig6_shape_sublinear_in_writers(self, env):
        """Figure 6: transaction time grows slowly with the writer count."""
        machine, messenger, tm = rig(env, n_nodes=300)
        times = {}
        for count in (16, 64, 256):
            group = tm.build_group(f"w{count}", machine.nodes[:count])
            out = run_one(env, tm, [group])
            assert out.committed
            times[count] = out.total
        # 16x more writers must cost far less than 16x the time.
        assert times[256] < times[16] * 8

    def test_reader_group_barely_matters(self, env):
        machine, messenger, tm = rig(env, n_nodes=300)
        w = tm.build_group("w", machine.nodes[:128])
        r_small = tm.build_group("r2", machine.nodes[128:130])
        out_small = run_one(env, tm, [w, r_small])
        env2 = Environment()
        machine2, messenger2, tm2 = rig(env2, n_nodes=300)
        w2 = tm2.build_group("w", machine2.nodes[:128])
        r_big = tm2.build_group("r8", machine2.nodes[128:136])
        out_big = run_one(env2, tm2, [w2, r_big])
        assert out_big.total < out_small.total * 2


class TestTradeTransaction:
    """Node-conservation guarantee for manager-level resource trades."""

    def _pipeline(self, env):
        from repro import PipelineBuilder, WeakScalingWorkload

        wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                 output_interval=15.0, total_steps=6)
        builder = PipelineBuilder(env, wl, seed=0, control_interval=10_000)
        pipe = builder.build()
        tm = TransactionManager(env, pipe.messenger, pipe.machine.nodes[0])
        pipe.global_manager.transaction_manager = tm
        return pipe, tm

    def _total_nodes(self, pipe):
        held = sum(c.units for c in pipe.containers.values())
        held += sum(len(c.standby_nodes) for c in pipe.containers.values())
        return held + pipe.scheduler.free_nodes

    def test_committed_trade_moves_nodes(self, env):
        pipe, tm = self._pipeline(env)
        before = self._total_nodes(pipe)

        def proc(env):
            yield env.timeout(1)
            yield pipe.global_manager.steal("helper", "bonds", 1)

        env.process(proc(env))
        env.run(until=50)
        assert tm.trades_committed == 1
        assert pipe.containers["helper"].units == 3
        assert pipe.containers["bonds"].units == 5
        assert self._total_nodes(pipe) == before

    def test_failed_increase_compensates(self, env):
        pipe, tm = self._pipeline(env)
        before = self._total_nodes(pipe)
        tm.trade_faults.append("increase")

        def proc(env):
            yield env.timeout(1)
            yield pipe.global_manager.steal("helper", "bonds", 1)

        env.process(proc(env))
        env.run(until=50)
        assert tm.trades_compensated == 1
        # Node went to the spare pool, not lost.
        assert pipe.scheduler.free_nodes == 1
        assert self._total_nodes(pipe) == before

    def test_failed_decrease_aborts_cleanly(self, env):
        pipe, tm = self._pipeline(env)
        before = self._total_nodes(pipe)
        tm.trade_faults.append("decrease")

        def proc(env):
            yield env.timeout(1)
            yield pipe.global_manager.steal("helper", "bonds", 1)

        env.process(proc(env))
        env.run(until=50)
        assert tm.trades_aborted == 1
        assert pipe.containers["helper"].units == 4  # untouched
        assert self._total_nodes(pipe) == before

    def test_infeasible_trade_rejected_at_prepare(self, env):
        pipe, tm = self._pipeline(env)

        def proc(env):
            yield env.timeout(1)
            yield pipe.global_manager.steal("helper", "bonds", 10)

        env.process(proc(env))
        env.run(until=50)
        assert tm.trades_aborted == 1
        assert pipe.containers["helper"].units == 4
