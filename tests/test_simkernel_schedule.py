"""Schedule-ordering regressions: run(until) edges and tie-breakers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simkernel import (
    Environment,
    FaultError,
    InsertionOrder,
    SeededShuffle,
    shuffle,
)
from repro.simkernel.events import NORMAL, URGENT


class TestRunUntilEdgeCases:
    def test_already_processed_failed_until_raises(self):
        """An ``until`` event that already failed must raise its exception
        on a later run() call, not hand the exception back as a value."""
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defuse()
        env.run()  # processes (and swallows, defused) the failure
        assert event.processed and event.failed
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=event)

    def test_already_processed_succeeded_until_returns_value(self):
        env = Environment()
        event = env.event()
        event.succeed("done")
        env.run()
        assert env.run(until=event) == "done"

    def test_until_in_the_past_raises_value_error(self):
        env = Environment()
        env.run(until=10.0)
        with pytest.raises(ValueError, match="in the past"):
            env.run(until=5.0)

    def test_until_now_is_allowed(self):
        env = Environment()
        env.run(until=10.0)
        assert env.run(until=10.0) is None
        assert env.now == 10.0


def _capture_order(env, count, priorities=None):
    """Schedule ``count`` events at the same time; return firing order."""
    fired = []

    def waiter(env, event, tag):
        yield event
        fired.append(tag)

    for i in range(count):
        event = env.timeout(5.0)
        if priorities is not None:
            # Re-schedule the underlying event at a chosen priority.
            event = env.event()
            env.schedule(event, priority=priorities[i], delay=5.0)
        env.process(waiter(env, event, i))
    env.run()
    return fired


class TestDefaultTieBreaker:
    @given(count=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_equal_slot_pops_are_stable(self, count):
        """Same (time, priority): the default tie-breaker preserves
        scheduling order exactly — the heap is effectively stable."""
        env = Environment()
        assert isinstance(env.tie_breaker, InsertionOrder)
        assert _capture_order(env, count) == list(range(count))

    @given(
        priorities=st.lists(
            st.sampled_from([URGENT, NORMAL]), min_size=2, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_urgent_before_normal_then_insertion_order(self, priorities):
        env = Environment()
        fired = _capture_order(env, len(priorities), priorities)
        expected = [i for i, p in enumerate(priorities) if p == URGENT] + [
            i for i, p in enumerate(priorities) if p == NORMAL
        ]
        assert fired == expected


class TestSeededShuffle:
    def test_same_seed_same_order(self):
        orders = [
            _capture_order(Environment(tie_breaker=shuffle(7)), 20)
            for _ in range(3)
        ]
        assert orders[0] == orders[1] == orders[2]

    def test_different_seeds_explore_different_orders(self):
        orders = {
            tuple(_capture_order(Environment(tie_breaker=shuffle(seed)), 20))
            for seed in range(8)
        }
        assert len(orders) > 1

    def test_shuffle_permutes_only_within_priority_groups(self):
        """Cross-slot ordering is untouched: URGENT still beats NORMAL at
        equal times, and each priority group is a permutation of itself."""
        priorities = [NORMAL, URGENT, NORMAL, URGENT, NORMAL, NORMAL, URGENT]
        fired = _capture_order(
            Environment(tie_breaker=shuffle(3)), len(priorities), priorities
        )
        urgent = [i for i, p in enumerate(priorities) if p == URGENT]
        normal = [i for i, p in enumerate(priorities) if p == NORMAL]
        assert sorted(fired[: len(urgent)]) == urgent
        assert sorted(fired[len(urgent):]) == normal

    def test_shuffle_preserves_time_order(self):
        env = Environment(tie_breaker=shuffle(5))
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in (3.0, 1.0, 2.0, 1.0, 3.0):
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(fired)

    def test_repr_names_seed(self):
        assert "42" in repr(SeededShuffle(42))


class TestSwallowedFaults:
    def test_unwaited_fault_failure_counts_not_raises(self):
        """A fire-and-forget action lost to an injected fault increments
        the counter and the run continues."""
        env = Environment()
        event = env.event()
        event.fail(FaultError("node crashed mid-notify"))
        survivor = []

        def bystander(env):
            yield env.timeout(1.0)
            survivor.append(env.now)

        env.process(bystander(env))
        env.run()
        assert env.swallowed_faults == 1
        assert survivor == [1.0]

    def test_unwaited_plain_failure_still_raises(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("a real bug"))
        with pytest.raises(RuntimeError, match="a real bug"):
            env.run()
        assert env.swallowed_faults == 0
