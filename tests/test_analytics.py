"""Tests for repro.analytics: ring-buffer round trips at every capacity
boundary, forecaster exactness on the series families they model, replay
bit-identity of the whole forecaster stack, and mid-run visibility of
ladder transitions in the series store."""

import math

from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment
from repro.analytics.forecast import EWMAForecaster, TrendForecaster
from repro.analytics.series import MetricSeries, SeriesStore
from repro.containers.presets import build_predictive_pipeline
from repro.overload.scenario import overload_burst_plan


# -- ring buffer ------------------------------------------------------------------


class TestMetricSeries:
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            max_size=40,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_append_wrap_query_round_trip(self, capacity, values):
        """At every boundary — empty, partial, exactly full, wrapped once,
        wrapped many times — the ring retains exactly the newest
        min(n, capacity) samples, oldest first."""
        series = MetricSeries("m", capacity)
        samples = [(float(i), v) for i, v in enumerate(values)]
        for t, v in samples:
            series.append(t, v)

        retained = samples[-capacity:]
        assert series.count == len(samples)
        assert len(series) == len(retained)
        assert series.window() == retained
        assert series.last() == (retained[-1] if retained else None)
        assert series.times() == [t for t, _ in retained]
        assert series.values() == [v for _, v in retained]

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=0, max_value=24),
        cut=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_window_and_since_agree(self, capacity, n, cut):
        series = MetricSeries("m", capacity)
        for i in range(n):
            series.append(float(i), float(i) * 2.0)
        retained = series.window()
        assert series.since(float(cut)) == [
            (t, v) for t, v in retained if t >= cut
        ]
        # partial windows are suffixes of the full window
        for k in range(len(retained) + 1):
            assert series.window(k) == retained[len(retained) - k:]

    def test_store_get_or_create_and_counter_baseline(self):
        store = SeriesStore(default_capacity=4)
        assert store.get("x") is None and "x" not in store
        store.append("x", 1.0, 2.0)
        assert "x" in store and store.get("x").last() == (1.0, 2.0)

        class FakeRegistry:
            def counter(self, name):
                return {"a": 7, "b": 0}[name]

        store.sample_counters(FakeRegistry(), ("a", "b"), 5.0,
                              baseline={"a": 3.0})
        assert store.get("counter.a").last() == (5.0, 4.0)
        assert store.get("counter.b").last() == (5.0, 0.0)


# -- forecasters ------------------------------------------------------------------


class TestForecasters:
    @given(
        alpha=st.floats(min_value=0.01, max_value=1.0),
        value=st.floats(allow_nan=False, allow_infinity=False, width=32),
        n=st.integers(min_value=1, max_value=32),
        horizon=st.floats(min_value=0.0, max_value=1e3),
    )
    @settings(max_examples=200, deadline=None)
    def test_ewma_exact_on_constant_series(self, alpha, value, n, horizon):
        """The incremental update form makes the correction term exactly
        zero on constant input — equality, not closeness."""
        model = EWMAForecaster(alpha)
        assert model.forecast() is None
        for i in range(n):
            model.observe(float(i), value)
        assert model.forecast(horizon) == value

    @given(
        window=st.integers(min_value=2, max_value=12),
        intercept=st.floats(min_value=-1e3, max_value=1e3),
        slope=st.floats(min_value=-50.0, max_value=50.0),
        n=st.integers(min_value=2, max_value=32),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_trend_exact_on_affine_series(self, window, intercept, slope, n,
                                          horizon):
        """OLS over any window of an affine series recovers the line, so
        extrapolation lands on it up to float rounding."""
        model = TrendForecaster(window)
        assert model.forecast() is None
        last = 0.0
        for i in range(n):
            t = float(i) * 3.0
            model.observe(t, intercept + slope * t)
            last = t
        expected = intercept + slope * (last + horizon)
        assert math.isclose(model.forecast(horizon), expected,
                            rel_tol=1e-9, abs_tol=1e-6)

    def test_trend_degenerate_cases(self):
        model = TrendForecaster(4)
        model.observe(10.0, 5.0)
        assert model.forecast(99.0) == 5.0  # one point: no slope
        model.observe(10.0, 7.0)
        assert model.forecast(99.0) == 6.0  # zero time spread: mean


# -- replay identity of the full stack --------------------------------------------


def _run_predictive(steps=12, seed=3):
    env = Environment()
    pipe = build_predictive_pipeline(env, steps=steps, seed=seed)
    plan = overload_burst_plan(seed, pipe)
    if plan.events:
        pipe.arm_faults(plan)
    pipe.run(settle=600)
    return env, pipe


def _fingerprint(pipe):
    analytics = pipe.analytics
    return {
        "samples": analytics.samples,
        "signals": analytics.signals,
        "store": analytics.store.as_dict(),
        "forecasts": {
            name: analytics.forecast(name) for name in analytics.store.names()
        },
        "trace": pipe.degradation.as_dicts(),
        "shed": pipe.shed_ledger.by_reason(),
    }


class TestReplayIdentity:
    def test_forecasts_bit_identical_across_replays(self):
        """Same seed, same schedule: every series, every forecast, every
        signal — the analytics layer rides the simulation clock with no
        state of its own."""
        _, pipe_a = _run_predictive()
        _, pipe_b = _run_predictive()
        assert _fingerprint(pipe_a) == _fingerprint(pipe_b)


# -- mid-run visibility (the end-only publication regression) ---------------------


class TestMidRunVisibility:
    def test_series_reflects_escalation_at_transition_time(self):
        """A ladder transition must land in the series store the moment it
        happens: the first poll *after* each trace step already sees a
        sample stamped at (or after) the step's transition time, and at
        least one poll strictly before pipeline end observed a nonzero
        degradation level."""
        env = Environment()
        pipe = build_predictive_pipeline(env, steps=12, seed=3)
        plan = overload_burst_plan(3, pipe)
        if plan.events:
            pipe.arm_faults(plan)

        polls = []

        def probe():
            while True:
                yield env.timeout(5.0)
                series = pipe.analytics.store.get("overload.degradation_level")
                polls.append((env.now, series.last() if series else None))

        env.process(probe(), name="probe")
        pipe.run(settle=600)
        end = env.now

        steps = [s for s in pipe.degradation.steps]
        assert steps, "scenario never engaged the ladder"
        for step in steps:
            later = [p for p in polls if p[0] > step.time]
            assert later, f"no poll after transition at t={step.time}"
            seen = later[0][1]
            assert seen is not None and seen[0] >= step.time, (
                f"transition at t={step.time} not visible to the poll at "
                f"t={later[0][0]}"
            )
        assert any(
            t < end and last is not None and last[1] > 0
            for t, last in polls
        ), "no mid-run poll ever saw a nonzero degradation level"
