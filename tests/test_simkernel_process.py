"""Unit tests for processes and the environment clock."""

import pytest

from repro.simkernel import Environment, Interrupt, SimulationError


class TestEnvironment:
    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=7.5).now == 7.5

    def test_run_until_time(self, env):
        env.process(ticker(env, 10))
        env.run(until=3.5)
        assert env.now == 3.5

    def test_run_until_past_raises(self, env):
        env.process(ticker(env, 3))
        env.run(until=2)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"
        assert env.now == 2.0

    def test_run_until_unreachable_event_raises(self, env):
        ev = env.event()
        env.process(ticker(env, 2))
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_deterministic_ordering_same_timestamp(self, env):
        order = []

        def proc(env, label):
            yield env.timeout(1)
            order.append(label)

        for label in "abc":
            env.process(proc(env, label))
        env.run()
        assert order == ["a", "b", "c"]


def ticker(env, n):
    for _ in range(n):
        yield env.timeout(1)


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def child(env):
            yield env.timeout(1)
            return 99

        collected = []

        def parent(env):
            value = yield env.process(child(env))
            collected.append(value)

        env.process(parent(env))
        env.run()
        assert collected == [99]

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("oops")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError as e:
                caught.append(str(e))

        env.process(parent(env))
        env.run()
        assert caught == ["'oops'"]

    def test_unwaited_crash_surfaces_in_run(self, env):
        def crasher(env):
            yield env.timeout(1)
            raise RuntimeError("unwatched")

        env.process(crasher(env))
        with pytest.raises(RuntimeError, match="unwatched"):
            env.run()

    def test_yield_non_event_raises(self, env):
        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_is_alive_transitions(self, env):
        def proc(env):
            yield env.timeout(2)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                causes.append((env.now, i.cause))

        def killer(env, target):
            yield env.timeout(5)
            target.interrupt("reason")

        p = env.process(sleeper(env))
        env.process(killer(env, p))
        env.run()
        assert causes == [(5.0, "reason")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            log.append(env.now)

        def killer(env, target):
            yield env.timeout(5)
            target.interrupt()

        p = env.process(sleeper(env))
        env.process(killer(env, p))
        env.run()
        assert log == [6.0]

    def test_stale_target_does_not_resume_twice(self, env):
        """After an interrupt, the original timeout firing must not resume
        the process a second time."""
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(10)
            except Interrupt:
                resumes.append("interrupted")
            yield env.timeout(20)
            resumes.append("done")

        def killer(env, target):
            yield env.timeout(5)
            target.interrupt()

        p = env.process(sleeper(env))
        env.process(killer(env, p))
        env.run()
        assert resumes == ["interrupted", "done"]

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def proc(env):
            try:
                env.active_process.interrupt()
            except SimulationError:
                errors.append(True)
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert errors == [True]
