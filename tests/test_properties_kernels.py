"""Property-based tests (hypothesis) over the analytics kernels, formats,
and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.adios import read_bp, write_bp
from repro.lammps import fcc_lattice, hex_lattice, notch
from repro.lammps.crack import BOND_CUTOFF
from repro.lammps.lattice import R0
from repro.lammps.neighbor import CellList, neighbor_pairs
from repro.smartpointer.bonds import (
    _reference_adjacency_list,
    adjacency_csr,
    adjacency_list,
    bonds_adjacency,
)
from repro.smartpointer.cna import (
    _reference_common_neighbor_analysis,
    _reference_pair_signatures,
    common_neighbor_analysis,
    pair_signatures,
)
from repro.smartpointer.costs import ComputeModel, CostModel
from repro.smartpointer.csym import _reference_central_symmetry, central_symmetry
from repro.smartpointer.fragments import FragmentTracker, find_fragments
from repro.smartpointer.helper import helper_merge, partition_atoms


def _crack_notched_plate(seed=0, nx=16, ny=10, jitter=0.02):
    """A notched hex plate with thermal-ish jitter: the crack workload's
    geometry, used to pin old/new kernel equivalence on realistic inputs."""
    rng = np.random.default_rng(seed)
    positions, box = hex_lattice(nx, ny)
    tip = np.array([box[0, 0] + 0.3 * (box[0, 1] - box[0, 0]),
                    (box[1, 0] + box[1, 1]) / 2.0])
    positions = notch(positions, tip, length=4.0, half_width=0.6 * R0)
    return positions + rng.normal(0.0, jitter, positions.shape)


# -- BP-lite format ----------------------------------------------------------------

_dtypes = st.sampled_from(["float64", "float32", "int64", "int32", "uint8"])


@given(
    shape=st.tuples(st.integers(0, 20), st.integers(1, 5)),
    dtype=_dtypes,
    seed=st.integers(0, 1000),
    attrs=st.dictionaries(
        st.text(min_size=1, max_size=8).filter(str.isidentifier),
        st.one_of(st.integers(-1000, 1000), st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=10), st.booleans()),
        max_size=4,
    ),
)
@settings(max_examples=40, deadline=None)
def test_bp_roundtrip_random(tmp_path_factory, shape, dtype, seed, attrs):
    rng = np.random.default_rng(seed)
    array = (rng.random(shape) * 100).astype(dtype)
    path = tmp_path_factory.mktemp("bp") / "x.bp"
    write_bp(path, {"a": array}, attrs)
    got, got_attrs = read_bp(path)
    np.testing.assert_array_equal(got["a"], array)
    assert got_attrs == attrs


# -- helper merge ------------------------------------------------------------------


@given(
    n=st.integers(1, 200),
    parts=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_partition_merge_inverse(n, parts, seed):
    rng = np.random.default_rng(seed)
    data = {
        "id": np.arange(n, dtype=np.uint32),
        "x": rng.random(n),
    }
    merged = helper_merge(partition_atoms(data, parts))
    np.testing.assert_array_equal(merged["id"], data["id"])
    np.testing.assert_array_equal(merged["x"], data["x"])


@given(
    n=st.integers(2, 100),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_merge_invariant_to_fragment_order(n, seed):
    rng = np.random.default_rng(seed)
    data = {"id": np.arange(n, dtype=np.uint32), "v": rng.random(n)}
    fragments = partition_atoms(data, 4)
    order = rng.permutation(len(fragments))
    merged = helper_merge([fragments[i] for i in order])
    np.testing.assert_array_equal(merged["v"], data["v"])


# -- neighbour search ----------------------------------------------------------------


@given(
    n=st.integers(2, 120),
    dim=st.sampled_from([2, 3]),
    cutoff=st.floats(0.2, 1.5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_celllist_equals_bruteforce(n, dim, cutoff, seed):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, dim)) * 4.0
    naive = {tuple(p) for p in neighbor_pairs(positions, cutoff)}
    fast = {tuple(p) for p in CellList(positions, cutoff).pairs()}
    assert naive == fast


@given(
    n=st.integers(1, 80),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_neighbors_of_consistent_with_pairs(n, seed):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 2)) * 3.0
    cells = CellList(positions, 0.5)
    pair_set = {tuple(p) for p in cells.pairs()}
    for i in range(n):
        for j in cells.neighbors_of(i):
            a, b = min(i, int(j)), max(i, int(j))
            assert (a, b) in pair_set


# -- vectorized kernels vs seed references ---------------------------------------------
#
# The vectorized hot paths must be drop-in: identical pair sets, identical
# adjacency, CSP within 1e-9, identical CNA signatures/labels — over random
# clouds, perfect lattices, and the crack workload's notched plates.


@given(
    n=st.integers(2, 120),
    dim=st.sampled_from([2, 3]),
    cutoff=st.floats(0.2, 1.5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_pairs_match_reference(n, dim, cutoff, seed):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, dim)) * 4.0
    cells = CellList(positions, cutoff)
    assert {tuple(p) for p in cells.pairs()} == {
        tuple(p) for p in cells._reference_pairs()
    }


@given(
    n=st.integers(2, 100),
    chunk=st.integers(1, 50),
    cutoff=st.floats(0.2, 1.2),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_chunked_allpairs_identical_to_oneshot(n, chunk, cutoff, seed):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 2)) * 3.0
    one_shot = neighbor_pairs(positions, cutoff, chunk_size=n)
    chunked = neighbor_pairs(positions, cutoff, chunk_size=chunk)
    np.testing.assert_array_equal(one_shot, chunked)


@given(
    n=st.integers(1, 90),
    dim=st.sampled_from([2, 3]),
    num_neighbors=st.sampled_from([2, 4, 6, 12]),
    cutoff=st.floats(0.3, 1.2),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_csym_matches_reference_random_clouds(n, dim, num_neighbors, cutoff, seed):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, dim)) * 3.0
    fast = central_symmetry(positions, num_neighbors, cutoff)
    slow = _reference_central_symmetry(positions, num_neighbors, cutoff)
    assert np.allclose(fast, slow, rtol=0.0, atol=1e-9)


@pytest.mark.parametrize(
    "positions,num_neighbors,cutoff",
    [
        (hex_lattice(12, 10)[0], 6, 1.5),
        (fcc_lattice(4, 4, 4)[0], 12, R0 * 1.2),
        (_crack_notched_plate(seed=1), 6, 1.5),
        (_crack_notched_plate(seed=2, jitter=0.05), 6, 1.5),
    ],
    ids=["hex", "fcc", "notched", "notched-hot"],
)
def test_csym_matches_reference_lattices(positions, num_neighbors, cutoff):
    fast = central_symmetry(positions, num_neighbors, cutoff)
    slow = _reference_central_symmetry(positions, num_neighbors, cutoff)
    assert np.allclose(fast, slow, rtol=0.0, atol=1e-9)


@given(
    n=st.integers(0, 80),
    m=st.integers(0, 160),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_adjacency_csr_matches_reference(n, m, seed):
    rng = np.random.default_rng(seed)
    if n >= 2 and m:
        raw = rng.integers(0, n, size=(m, 2))
        raw = raw[raw[:, 0] != raw[:, 1]]
        pairs = np.sort(raw, axis=1).astype(np.int64)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    fast = adjacency_list(pairs, n)
    slow = _reference_adjacency_list(pairs, n)
    assert len(fast) == len(slow) == n
    for a, b in zip(fast, slow):
        np.testing.assert_array_equal(a, b)
    indptr, indices = adjacency_csr(pairs, n)
    assert indptr[-1] == len(indices) == 2 * len(pairs)


@pytest.mark.parametrize(
    "positions,cutoff",
    [
        (hex_lattice(10, 8)[0], BOND_CUTOFF),
        (fcc_lattice(3, 3, 3)[0], R0 * 1.2),
        (_crack_notched_plate(seed=3), BOND_CUTOFF),
    ],
    ids=["hex", "fcc", "notched"],
)
def test_cna_matches_reference(positions, cutoff):
    pairs = bonds_adjacency(positions, cutoff, "celllist")
    assert pair_signatures(pairs, len(positions)) == _reference_pair_signatures(
        pairs, len(positions)
    )
    np.testing.assert_array_equal(
        common_neighbor_analysis(pairs, len(positions)),
        _reference_common_neighbor_analysis(pairs, len(positions)),
    )


# -- cost models ----------------------------------------------------------------------


@given(
    base=st.floats(0.1, 100),
    exponent=st.floats(0.1, 3.0),
    natoms=st.integers(1, 10**8),
    units=st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_cost_model_invariants(base, exponent, natoms, units):
    cost = CostModel("x", base_seconds=base, exponent=exponent, reference_atoms=10**6)
    serial = cost.serial_time(natoms)
    assert serial >= 0
    # RR: per-chunk time constant, throughput linear in units.
    assert cost.service_time(natoms, units, ComputeModel.ROUND_ROBIN) == serial
    assert cost.throughput(natoms, units, ComputeModel.ROUND_ROBIN) == pytest.approx(
        units / serial
    )
    # TREE never slower than serial.
    assert cost.service_time(natoms, units, ComputeModel.TREE) <= serial + 1e-12
    # units_to_sustain is the minimal sufficient allocation.
    interval = serial / 3 + 0.01
    needed = cost.units_to_sustain(natoms, interval, ComputeModel.ROUND_ROBIN,
                                   max_units=512)
    if needed <= 512:
        assert cost.throughput(natoms, needed) >= 1.0 / interval
        if needed > 1:
            assert cost.throughput(natoms, needed - 1) < 1.0 / interval


# -- fragments --------------------------------------------------------------------------


@st.composite
def bond_lists(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 80))
    pairs = set()
    for _ in range(m):
        i = draw(st.integers(0, n - 2))
        j = draw(st.integers(i + 1, n - 1))
        pairs.add((i, j))
    array = (np.array(sorted(pairs), dtype=np.int64)
             if pairs else np.empty((0, 2), dtype=np.int64))
    return n, array


@given(data=bond_lists())
@settings(max_examples=60, deadline=None)
def test_fragment_labels_partition_atoms(data):
    n, pairs = data
    labels, count = find_fragments(pairs, n)
    assert len(labels) == n
    assert len(np.unique(labels)) == count
    # Bonded atoms always share a label.
    for i, j in pairs:
        assert labels[i] == labels[j]


@given(data=bond_lists(), epochs=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_tracker_sizes_conserve_atoms(data, epochs):
    n, pairs = data
    tracker = FragmentTracker(min_size=1)
    for _ in range(epochs):
        ids = tracker.update(pairs, n)
        assert len(ids) == n
        assert sum(tracker.sizes.values()) == int((ids >= 0).sum())
        # Persistent ids are unique per fragment: the id map is a function.
        for fid, size in tracker.sizes.items():
            assert size == int((ids == fid).sum())


@given(data=bond_lists())
@settings(max_examples=30, deadline=None)
def test_tracker_idempotent_on_static_bonds(data):
    n, pairs = data
    tracker = FragmentTracker(min_size=1)
    first = tracker.update(pairs, n)
    for _ in range(3):
        again = tracker.update(pairs, n)
        np.testing.assert_array_equal(first, again)
    # No split/merge/vanish events on a static structure.
    assert all(e.kind == "appear" for e in tracker.events)
