"""Tests for the repro.faults subsystem: plans, injection, detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment
from repro.cluster import Machine, TransferError
from repro.evpath import Messenger
from repro.faults import (
    ClusterFaultInjector,
    FailureDetector,
    FaultKind,
    FaultPlan,
    HeartbeatMonitor,
    HeartbeatSender,
    NetworkFaultState,
)


class TestFaultPlan:
    def test_same_seed_same_signature(self):
        a = FaultPlan.random(7, node_ids=range(8), horizon=100.0,
                             crashes=2, slowdowns=1, drops=1)
        b = FaultPlan.random(7, node_ids=range(8), horizon=100.0,
                             crashes=2, slowdowns=1, drops=1)
        assert a.signature() == b.signature()
        assert a.events == b.events

    def test_different_seed_different_signature(self):
        a = FaultPlan.random(7, node_ids=range(8), horizon=100.0)
        b = FaultPlan.random(8, node_ids=range(8), horizon=100.0)
        assert a.signature() != b.signature()

    def test_events_sorted_by_time(self):
        plan = FaultPlan()
        plan.node_crash(50.0, 3)
        plan.node_crash(10.0, 1)
        plan.node_slowdown(30.0, 2, factor=2.0, duration=5.0)
        assert [e.time for e in plan.events] == [10.0, 30.0, 50.0]

    def test_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="target"):
            plan.add(FaultKind.NODE_CRASH, 1.0)
        with pytest.raises(ValueError, match="duration"):
            plan.node_slowdown(1.0, 0, factor=2.0, duration=0.0)
        with pytest.raises(ValueError, match="multiplier"):
            plan.node_slowdown(1.0, 0, factor=0.5, duration=5.0)
        with pytest.raises(ValueError, match="probability"):
            plan.message_drop(1.0, (0,), probability=1.5, duration=5.0)
        with pytest.raises(ValueError, match=">= 0"):
            plan.node_crash(-1.0, 0)

    def test_scripted_validation_and_lookup(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="unknown behaviour"):
            plan.script("txn", ("p", 1), "explode")
        with pytest.raises(ValueError, match="unknown scripted-fault domain"):
            plan.script("nope", ("p", 1), "abort")
        plan.script("txn", ("p", 1), "crash")
        assert plan.lookup("txn", ("p", 2)) is None
        assert plan.lookup("txn", ("p", 1)) == "crash"
        assert ("txn", ("p", 1)) in plan.triggered

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        crashes=st.integers(min_value=0, max_value=3),
        slowdowns=st.integers(min_value=0, max_value=3),
        drops=st.integers(min_value=0, max_value=3),
    )
    def test_any_seeded_plan_replays_identically(self, seed, crashes,
                                                 slowdowns, drops):
        """Property: a seeded plan is a pure function of its arguments."""
        make = lambda: FaultPlan.random(
            seed, node_ids=range(12), horizon=200.0,
            crashes=crashes, slowdowns=slowdowns, drops=drops,
        )
        a, b = make(), make()
        assert a.signature() == b.signature()
        assert a.events == b.events


class TestInjector:
    def test_crash_marks_node_and_scheduler(self, env, machine):
        from repro.cluster.scheduler import BatchScheduler

        part = machine.partition("pool", 4)
        sched = BatchScheduler(env, part)
        plan = FaultPlan()
        plan.node_crash(5.0, part[1].node_id)
        seen = []
        injector = ClusterFaultInjector(env, plan, part.nodes, scheduler=sched)
        injector.on_crash(seen.append)
        injector.start()
        env.run(until=10.0)
        assert part[1].failed
        assert part[1] in sched.failed_nodes
        assert part[1] not in sched._free
        assert seen == [part[1]]

    def test_slowdown_window_stretches_compute(self, env, machine):
        node = machine.nodes[0]
        plan = FaultPlan()
        plan.node_slowdown(0.0, node.node_id, factor=3.0, duration=10.0)
        ClusterFaultInjector(env, plan, [node]).start()

        durations = []

        def work():
            start = env.now
            yield node.compute(1.0, cores=1)
            durations.append(env.now - start)

        env.process(work())
        env.run(until=50.0)

        def work_after():
            start = env.now
            yield node.compute(1.0, cores=1)
            durations.append(env.now - start)

        env.process(work_after())
        env.run(until=100.0)
        assert durations[0] == pytest.approx(3.0)
        assert durations[1] == pytest.approx(1.0)

    def test_identical_seed_identical_trace(self):
        traces = []
        for _ in range(2):
            env = Environment()
            machine = Machine(env, num_nodes=8)
            plan = FaultPlan.random(3, node_ids=range(8), horizon=60.0,
                                    crashes=2, slowdowns=1)
            injector = ClusterFaultInjector(env, plan, machine.nodes)
            injector.start()
            env.run(until=120.0)
            traces.append(list(injector.trace))
        assert traces[0] == traces[1]

    def test_unknown_target_raises(self, env, machine):
        plan = FaultPlan()
        plan.node_crash(1.0, 999)
        ClusterFaultInjector(env, plan, machine.nodes).start()
        with pytest.raises(ValueError, match="unknown node 999"):
            env.run(until=5.0)


class TestNetworkFaultState:
    def test_partition_window(self, env, machine):
        a, b = machine.nodes[0], machine.nodes[1]
        plan = FaultPlan()
        plan.link_partition(10.0, (a.node_id,), duration=5.0)
        state = NetworkFaultState(env, plan)
        machine.network.faults = state

        outcomes = {}

        def xfer(at, label):
            yield env.timeout(at - env.now)
            try:
                yield machine.network.transfer(a, b, 1024)
                outcomes[label] = "ok"
            except TransferError:
                outcomes[label] = "partitioned"

        env.process(xfer(11.0, "inside"))
        env.run(until=30.0)
        env.process(xfer(30.0, "after"))
        env.run(until=60.0)
        assert outcomes == {"inside": "partitioned", "after": "ok"}
        assert state.partitioned == 1

    def test_certain_drop(self, env, machine):
        a, b = machine.nodes[2], machine.nodes[3]
        plan = FaultPlan()
        plan.message_drop(0.0, (b.node_id,), probability=1.0, duration=100.0)
        machine.network.faults = NetworkFaultState(env, plan)

        def xfer():
            with pytest.raises(TransferError):
                yield machine.network.transfer(a, b, 1024)

        env.process(xfer())
        env.run(until=10.0)
        assert machine.network.faults.dropped == 1

    def test_degrade_slows_transfer(self, env, machine):
        a, b = machine.nodes[4], machine.nodes[5]
        durations = []

        def xfer():
            start = env.now
            yield machine.network.transfer(a, b, 10 * 2**20)
            durations.append(env.now - start)

        env.process(xfer())
        env.run(until=50.0)

        env2 = Environment()
        machine2 = Machine(env2, num_nodes=16)
        a2, b2 = machine2.nodes[4], machine2.nodes[5]
        plan = FaultPlan()
        plan.link_degrade(0.0, (a2.node_id,), factor=4.0, duration=100.0)
        machine2.network.faults = NetworkFaultState(env2, plan)

        def xfer2():
            start = env2.now
            yield machine2.network.transfer(a2, b2, 10 * 2**20)
            durations.append(env2.now - start)

        env2.process(xfer2())
        env2.run(until=50.0)
        assert durations[1] == pytest.approx(durations[0] * 4.0, rel=0.01)


class TestFailureDetector:
    def test_silent_member_suspected(self, env):
        suspects = []
        det = FailureDetector(env, "t", lease_timeout=4.0,
                              on_suspect=suspects.append)
        det.watch("r0")
        det.watch("r1")

        def beater():
            while True:
                yield env.timeout(1.0)
                det.beat("r0")  # r1 stays silent

        env.process(beater())
        det.start()
        env.run(until=20.0)
        assert suspects == ["r1"]
        assert "r1" in det.suspected
        assert "r0" not in det.suspected

    def test_false_positive_accounting(self, env):
        det = FailureDetector(env, "t", lease_timeout=2.0)
        det.watch("r0")
        det.start()
        env.run(until=5.0)
        assert "r0" in det.suspected
        det.beat("r0")
        assert det.false_positives == 1
        assert "r0" not in det.suspected

    def test_suspend_regrants_leases(self, env):
        down = {"flag": False}
        suspects = []
        det = FailureDetector(env, "t", lease_timeout=3.0,
                              on_suspect=suspects.append,
                              suspend_when=lambda: down["flag"])
        det.watch("r0")
        det.start()

        def script():
            down["flag"] = True
            yield env.timeout(20.0)  # far beyond the lease
            down["flag"] = False

        env.process(script())
        env.run(until=22.0)
        # The detector's own outage must not convict the member...
        assert suspects == []
        env.run(until=40.0)
        # ...but continued silence after resume does.
        assert suspects == ["r0"]

    def test_heartbeats_end_to_end(self, env, machine, messenger):
        mon_node, rep_node = machine.nodes[0], machine.nodes[1]
        suspects = []
        det = FailureDetector(env, "lm", lease_timeout=3.0,
                              on_suspect=suspects.append)
        HeartbeatMonitor(env, messenger, "lm-hb", mon_node, det)
        sender = HeartbeatSender(env, messenger, "r0", rep_node, "lm-hb",
                                 interval=1.0)
        det.watch("r0")
        sender.start()
        det.start()
        env.run(until=10.0)
        assert suspects == []
        assert det.beats > 5
        rep_node.fail()
        env.run(until=20.0)
        assert suspects == ["r0"]
