"""Tests for global-manager operations and error paths."""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.simkernel.errors import SimulationError


def build(env, spare=4, steps=10, **kwargs):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13 + spare,
                             spare_staging_nodes=spare,
                             output_interval=15.0, total_steps=steps)
    kwargs.setdefault("control_interval", 10_000)
    return PipelineBuilder(env, wl, seed=0, **kwargs).build()


class TestIncreaseDecrease:
    def test_increase_beyond_spares_raises(self):
        env = Environment()
        pipe = build(env, spare=2)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", 5)

        env.process(ctl(env))
        with pytest.raises(SimulationError, match="spare"):
            pipe.run(settle=60)

    def test_decrease_clamped_to_units(self):
        """Asking to shrink by more than the container holds removes what it
        can while keeping at least the protocol invariants."""
        env = Environment()
        pipe = build(env)

        def ctl(env):
            yield env.timeout(1)
            freed = yield pipe.global_manager.decrease("bonds", 3)
            assert len(freed) == 3

        env.process(ctl(env))
        pipe.run(settle=120)
        assert pipe.containers["bonds"].units == 1

    def test_unknown_container_raises(self):
        env = Environment()
        pipe = build(env)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("ghost", 1)

        env.process(ctl(env))
        with pytest.raises(SimulationError, match="unknown container"):
            pipe.run(settle=60)

    def test_freed_nodes_return_to_pool(self):
        env = Environment()
        pipe = build(env, spare=0)
        before = pipe.scheduler.free_nodes

        def ctl(env):
            yield env.timeout(1)
            freed = yield pipe.global_manager.decrease("csym", 1)
            for node in freed:
                pipe.scheduler._free.append(node)

        env.process(ctl(env))
        pipe.run(settle=120)
        assert pipe.scheduler.free_nodes == before + 1


class TestDependencyGraph:
    def test_dependents_follow_edges(self):
        env = Environment()
        pipe = build(env)
        gm = pipe.global_manager
        assert set(gm.dependents_of("bonds")) == {"csym", "cna"}
        assert gm.dependents_of("csym") == []
        assert gm.upstream_of("bonds") == ["helper"]
        gm.stop()

    def test_duplicate_registration_rejected(self):
        env = Environment()
        pipe = build(env)
        with pytest.raises(SimulationError):
            pipe.global_manager.register(pipe.managers["bonds"])
        pipe.global_manager.stop()

    def test_offline_cascade_order_downstream_first(self):
        env = Environment()
        pipe = build(env, steps=8)
        order = []
        original = pipe.global_manager.actions_taken

        def ctl(env):
            yield env.timeout(30)
            affected = yield pipe.global_manager.take_offline("bonds")
            order.extend(affected)

        env.process(ctl(env))
        pipe.run(settle=300)
        offline_actions = [a for a in original if a.startswith("offline")]
        # csym/cna (dependents) go down before bonds itself.
        assert offline_actions[-1] == "offline bonds"
        assert set(order) == {"bonds", "csym", "cna"}

    def test_retire_returns_nodes_to_spares(self):
        env = Environment()
        pipe = build(env, spare=0, steps=8)

        def ctl(env):
            yield env.timeout(30)
            yield pipe.global_manager.retire("csym")

        env.process(ctl(env))
        pipe.run(settle=300)
        assert pipe.containers["csym"].offline
        assert pipe.scheduler.free_nodes == 3  # csym's allocation


class TestArbiterBackedGM:
    """The GM's fleet face: borrowing from (and returning loans to) a
    FleetArbiter when the tenant's own spare pool runs dry."""

    @staticmethod
    def wire(env, pipe, spares=2):
        from repro.cluster import Machine
        from repro.fleet import FleetArbiter, TenantQuota

        m = Machine(env, num_nodes=spares)
        arb = FleetArbiter(env, list(m.partition("spares", spares).nodes),
                           rebalance_interval=0)
        base = len(pipe.scheduler.pool.nodes)
        arb.register("tA", pipe.global_manager,
                     TenantQuota(reserved=base, burst=base + spares))
        return arb

    def test_spare_capacity_includes_arbiter_supply(self):
        env = Environment()
        pipe = build(env, spare=1)
        arb = self.wire(env, pipe, spares=2)
        assert pipe.global_manager.spare_capacity() == 3
        assert arb.available_to("tA") == 2
        pipe.global_manager.stop()

    def test_increase_borrows_from_arbiter_when_dry(self):
        env = Environment()
        pipe = build(env, spare=0)
        arb = self.wire(env, pipe)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", 1)

        env.process(ctl(env))
        pipe.run(settle=60)
        assert pipe.containers["bonds"].units == 5
        sched = pipe.scheduler
        assert any(sched.is_borrowed(n) for n in sched.pool.nodes)
        assert [t for t in arb.trace if t[1] == "grant"]
        assert arb.violations == []

    def test_aborted_increase_returns_loan_to_arbiter(self):
        """An aborted grow must not convert a loan into a tenant hold: the
        surviving borrowed node goes back to the *arbiter's* spare pool,
        while the dead one is quarantined with the tenant that holds it."""
        env = Environment()
        pipe = build(env, spare=0)
        arb = self.wire(env, pipe)
        gm = pipe.global_manager
        out = {}

        def ctl(env):
            yield env.timeout(1)
            granted = arb.request("tA", 2)
            granted[0].fail()  # dies between the grant and the increase
            out["result"] = yield gm.increase("bonds", 2, nodes=granted)
            out["granted"] = granted

        env.process(ctl(env))
        pipe.run(settle=60)
        assert out["result"]["aborted"]
        dead, alive = out["granted"]
        assert alive in arb.spares
        assert alive not in pipe.scheduler.pool.nodes
        assert alive not in pipe.scheduler._free
        assert dead in pipe.scheduler.pool.nodes  # quarantined, not returned
        assert arb.violations == []

    def test_increase_beyond_arbiter_supply_still_raises(self):
        env = Environment()
        pipe = build(env, spare=0)
        arb = self.wire(env, pipe, spares=1)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", 3)

        env.process(ctl(env))
        with pytest.raises(SimulationError, match="spare"):
            pipe.run(settle=60)
        assert [t for t in arb.trace if t[1] == "deny"]


class TestSchedulerSpecificAllocation:
    def test_allocate_specific_claims_exact_nodes(self, env):
        from repro.cluster import BatchScheduler, Machine

        machine = Machine(env, num_nodes=8)
        pool = machine.partition("p", 8)
        scheduler = BatchScheduler(env, pool)
        wanted = [pool[3], pool[5]]
        job = scheduler.allocate_specific(wanted, "x")
        assert job.nodes == wanted
        assert scheduler.free_nodes == 6
        with pytest.raises(SimulationError):
            scheduler.allocate_specific([pool[3]], "y")  # already taken

    def test_allocate_specific_empty_rejected(self, env):
        from repro.cluster import BatchScheduler, Machine

        machine = Machine(env, num_nodes=4)
        scheduler = BatchScheduler(env, machine.partition("p", 4))
        with pytest.raises(ValueError):
            scheduler.allocate_specific([], "x")
