"""Tests for containers, replicas, and local-manager protocols.

These build a minimal two-stage pipeline by hand (producer writers ->
container under test) to exercise container mechanics without the full
pipeline builder.
"""

import pytest

from repro.simkernel import Environment, SimulationError, Store
from repro.cluster import BatchScheduler, Machine
from repro.containers import Container, LocalManager
from repro.containers.protocol import ProtocolTracer
from repro.data import DataChunk
from repro.datatap import DataTapLink, DataTapWriter
from repro.adios import ParallelFileSystem
from repro.evpath import Message, MessageType, Messenger
from repro.smartpointer.component import SMARTPOINTER_COMPONENTS, ComponentSpec
from repro.smartpointer.costs import ComputeModel, CostModel


def small_spec(name="bonds", base=2.0, exponent=1.0, model=ComputeModel.ROUND_ROBIN,
               output_ratio=1.0, essential=False):
    return ComponentSpec(
        name=name,
        complexity="O(n)",
        compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN,
                        ComputeModel.TREE, ComputeModel.PARALLEL),
        dynamic_branching=False,
        cost=CostModel(name, base_seconds=base, exponent=exponent,
                       reference_atoms=1000),
        output_ratio=output_ratio,
        essential=essential,
    )


class Rig:
    """A producer link feeding one container, with a disk sink."""

    def __init__(self, env, n_nodes=12, model=ComputeModel.ROUND_ROBIN,
                 units=2, queue_capacity=2, gather_count=1, base=2.0):
        self.env = env
        self.machine = Machine(env, num_nodes=n_nodes, memory_per_node=64 * 2**30)
        self.messenger = Messenger(env, self.machine.network)
        self.fs = ParallelFileSystem(env)
        self.link = DataTapLink(env, self.messenger, "in")
        self.writer = DataTapWriter(env, self.messenger, self.machine.nodes[0], name="src")
        self.link.add_writer(self.writer)
        self.container = Container(
            env,
            self.messenger,
            small_spec(base=base),
            model,
            input_link=self.link,
            output_link=None,
            queue_capacity=queue_capacity,
            gather_count=gather_count,
            sink_fs=self.fs,
            natoms_hint=1000,
        )
        pool = self.machine.partition("staging", 8)
        self.scheduler = BatchScheduler(env, pool)
        job = self.scheduler.allocate(units, "c")
        for node in job.nodes:
            self.container.add_replica(node)

    def feed(self, count, nbytes=1e6, natoms=1000, interval=1.0):
        def gen(env):
            for ts in range(count):
                chunk = DataChunk(timestep=ts, nbytes=nbytes, natoms=natoms,
                                  created_at=env.now)
                chunk.entered_stage_at = env.now
                yield self.writer.write(chunk)
                yield env.timeout(interval)
        return self.env.process(gen(self.env))


class TestContainerBasics:
    def test_chunks_flow_to_sink(self, env):
        rig = Rig(env, units=2)
        rig.feed(4)
        env.run(until=60)
        assert rig.container.completions == 4
        assert len(rig.fs.files) == 4
        assert rig.fs.files[0].attributes["provenance"] == ["bonds"]

    def test_latency_recorded(self, env):
        rig = Rig(env, units=2, base=2.0)
        rig.feed(2, interval=5.0)
        env.run(until=60)
        assert rig.container.latency.count == 2
        assert rig.container.latency.mean() >= 2.0

    def test_service_time_uses_units_for_tree(self, env):
        rig = Rig(env, model=ComputeModel.TREE, units=4)
        chunk = DataChunk(timestep=0, nbytes=1, natoms=1000)
        assert rig.container.service_time(chunk) == pytest.approx(0.5)  # 2.0 / 4

    def test_rr_service_time_ignores_units(self, env):
        rig = Rig(env, units=4)
        chunk = DataChunk(timestep=0, nbytes=1, natoms=1000)
        assert rig.container.service_time(chunk) == pytest.approx(2.0)

    def test_tree_container_single_active_replica(self, env):
        rig = Rig(env, model=ComputeModel.TREE, units=3)
        actives = [r for r in rig.container.replicas if not r.passive]
        assert len(actives) == 1
        assert rig.container.units == 3

    def test_gather_assembles_fragments(self, env):
        rig = Rig(env, model=ComputeModel.TREE, units=1, gather_count=2,
                  queue_capacity=4)
        w2 = DataTapWriter(env, rig.messenger, rig.machine.nodes[1], name="src2")
        rig.link.add_writer(w2)

        def gen(env):
            for ts in range(2):
                for writer in (rig.writer, w2):
                    c = DataChunk(timestep=ts, nbytes=5e5, natoms=500, created_at=env.now)
                    c.entered_stage_at = env.now
                    yield writer.write(c)
                yield env.timeout(5)

        env.process(gen(env))
        env.run(until=60)
        assert rig.container.completions == 2  # one merged completion per step
        # Merged chunk carries combined size.
        assert rig.fs.files[0].nbytes == pytest.approx(1e6)

    def test_gather_requires_tree(self, env):
        machine = Machine(env, num_nodes=2)
        messenger = Messenger(env, machine.network)
        with pytest.raises(SimulationError):
            Container(env, messenger, small_spec(), ComputeModel.ROUND_ROBIN,
                      None, None, gather_count=2)

    def test_unsupported_model_rejected(self, env):
        machine = Machine(env, num_nodes=2)
        messenger = Messenger(env, machine.network)
        helper = SMARTPOINTER_COMPONENTS["helper"]
        with pytest.raises(SimulationError):
            Container(env, messenger, helper, ComputeModel.ROUND_ROBIN, None, None)

    def test_offline_downstream_detection(self, env):
        machine = Machine(env, num_nodes=2)
        messenger = Messenger(env, machine.network)
        link = DataTapLink(env, messenger, "out")
        c = Container(env, messenger, small_spec(), ComputeModel.ROUND_ROBIN,
                      None, output_link=link)
        assert c.offline_downstream()  # no readers yet


class TestRemoveReplicas:
    def test_remove_requires_valid_count(self, env):
        rig = Rig(env, units=2)
        with pytest.raises(SimulationError):
            rig.container.remove_replicas(0)
        with pytest.raises(SimulationError):
            rig.container.remove_replicas(3)

    def test_remove_redispatches_queue(self, env):
        rig = Rig(env, units=2, queue_capacity=4, base=3.0)
        rig.feed(6, interval=0.1)

        def controller(env):
            yield env.timeout(2)
            yield rig.link.pause_writers()
            rig.container.remove_replicas(1)
            yield rig.link.resume_writers()

        env.process(controller(env))
        env.run(until=120)
        assert rig.container.completions == 6  # nothing lost
        assert rig.container.units == 1

    def test_tree_cannot_remove_head(self, env):
        rig = Rig(env, model=ComputeModel.TREE, units=2)
        with pytest.raises(SimulationError):
            rig.container.remove_replicas(2)

    def test_oldest_input_entry_tracks_backlog(self, env):
        rig = Rig(env, units=1, queue_capacity=1, base=50.0)
        rig.feed(3, interval=0.1)
        env.run(until=10)
        oldest = rig.container.oldest_input_entry()
        assert oldest is not None and oldest < 1.0
        est = rig.container.latency_estimate()
        assert est == pytest.approx(env.now - oldest)


class TestLocalManagerProtocols:
    def _managed(self, env, units=2, base=2.0):
        rig = Rig(env, units=units, base=base)
        gm_ep = rig.messenger.endpoint(rig.machine.nodes[8], "global-mgr")
        tracer = ProtocolTracer()
        manager = LocalManager(
            env, rig.messenger, rig.container,
            node=rig.container.replicas[0].node,
            scheduler=rig.scheduler, tracer=tracer, monitor_interval=1000,
        )
        return rig, gm_ep, manager, tracer

    def _request(self, env, rig, gm_ep, mtype, payload):
        return rig.messenger.request(
            rig.machine.nodes[8], gm_ep, rig.container.name + ".cmgr",
            Message(mtype, "global-mgr", payload=payload),
        )

    def test_increase_spawns_replicas(self, env):
        rig, gm_ep, manager, tracer = self._managed(env)
        nodes = rig.scheduler.allocate(2, "extra").nodes

        def gm(env):
            reply = yield self._request(
                env, rig, gm_ep, MessageType.INCREASE_REQUEST, {"nodes": nodes}
            )
            assert reply.payload["units"] == 4

        env.process(gm(env))
        env.run(until=60)
        assert rig.container.units == 4
        record = tracer.of("increase")[0]
        assert record.breakdown["intra_container"] > 0
        assert record.messages["intra_container"] > 0

    def test_increase_cost_grows_with_size(self, env):
        """Figure 4's shape: intra-container metadata exchange dominates and
        grows with the number of new replicas."""
        rig, gm_ep, manager, tracer = self._managed(env)
        n2 = rig.scheduler.allocate(1, "a").nodes
        n4 = rig.scheduler.allocate(4, "b").nodes

        def gm(env):
            yield self._request(env, rig, gm_ep, MessageType.INCREASE_REQUEST, {"nodes": n2})
            yield self._request(env, rig, gm_ep, MessageType.INCREASE_REQUEST, {"nodes": n4})

        env.process(gm(env))
        env.run(until=120)
        small, big = tracer.of("increase")
        assert big.breakdown["intra_container"] > small.breakdown["intra_container"]
        assert big.breakdown["intra_container"] > big.breakdown.get("manager", 0.0)

    def test_decrease_dominated_by_writer_pause(self, env):
        """Figure 5's shape."""
        rig, gm_ep, manager, tracer = self._managed(env, units=3)
        rig.feed(3, interval=0.1)

        def gm(env):
            yield env.timeout(1)
            reply = yield self._request(
                env, rig, gm_ep, MessageType.DECREASE_REQUEST, {"count": 1}
            )
            assert len(reply.payload["nodes"]) == 1

        env.process(gm(env))
        env.run(until=60)
        record = tracer.of("decrease")[0]
        assert record.breakdown["writer_pause"] > record.breakdown.get("manager", 0.0)
        assert rig.container.units == 2
        # Writers resumed after the decrease.
        assert not rig.writer.paused

    def test_offline_writes_stranded_with_provenance(self, env):
        rig, gm_ep, manager, tracer = self._managed(env, units=1, base=30.0)
        rig.feed(4, interval=0.1)

        def gm(env):
            yield env.timeout(5)
            reply = yield self._request(env, rig, gm_ep, MessageType.OFFLINE_REQUEST, {})
            assert len(reply.payload["nodes"]) == 1

        env.process(gm(env))
        env.run(until=120)
        assert rig.container.offline
        assert rig.container.units == 0
        stranded = [f for f in rig.fs.files if f.attributes.get("stranded")]
        assert stranded  # the in-service / queued chunks landed on disk
        for record in stranded:
            assert record.attributes["provenance"] == []  # not yet processed

    def test_headroom_and_shortfall(self, env):
        rig, gm_ep, manager, tracer = self._managed(env, units=2, base=2.0)
        # base 2.0s at 1000 atoms; sustain interval 1.0 needs 2 units.
        assert manager.units_to_sustain(1.0) == 2
        assert manager.headroom(1.0) == 0
        assert manager.shortfall(1.0) == 0
        assert manager.shortfall(0.5) == 2  # needs 4
        assert manager.headroom(2.0) == 1  # needs 1
