"""Shared fixtures."""

import pytest

from repro.simkernel import Environment
from repro.cluster import Machine, franklin
from repro.evpath import Messenger


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def machine(env):
    """A small flat-ish machine: 16 nodes, fast to build."""
    return Machine(env, num_nodes=16, cores_per_node=4)


@pytest.fixture
def messenger(env, machine):
    return Messenger(env, machine.network)
