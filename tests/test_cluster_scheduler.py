"""Unit tests for machine partitioning and the batch scheduler."""

import numpy as np
import pytest

from repro.simkernel import Environment, SimulationError
from repro.cluster import AprunModel, BatchScheduler, Machine, franklin, redsky


class TestPartitioning:
    def test_partition_carves_nodes(self, env):
        m = Machine(env, num_nodes=10)
        sim = m.partition("sim", 6)
        staging = m.partition("staging", 3)
        assert len(sim) == 6
        assert len(staging) == 3
        assert m.unallocated == 1
        assert {n.node_id for n in sim}.isdisjoint({n.node_id for n in staging})

    def test_duplicate_partition_rejected(self, env):
        m = Machine(env, num_nodes=4)
        m.partition("a", 2)
        with pytest.raises(SimulationError):
            m.partition("a", 1)

    def test_over_allocation_rejected(self, env):
        m = Machine(env, num_nodes=4)
        with pytest.raises(SimulationError):
            m.partition("big", 5)

    def test_get_partition(self, env):
        m = Machine(env, num_nodes=4)
        part = m.partition("x", 2)
        assert m.get_partition("x") is part


class TestPresets:
    def test_franklin_properties(self, env):
        m = franklin(env, num_nodes=64)
        assert m.name == "franklin"
        assert m.nodes[0].num_cores == 4
        assert m.network.topology is not None

    def test_redsky_properties(self, env):
        m = redsky(env, num_nodes=27)
        assert m.nodes[0].num_cores == 8
        assert m.nodes[0].memory_bytes == 12 * 2**30


class TestAprunModel:
    def test_sample_within_paper_range(self):
        model = AprunModel()
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(3.0 <= s <= 27.0 for s in samples)
        # The paper saw values "between 3 to 27 seconds" with wide variance.
        assert max(samples) > 15
        assert min(samples) < 6

    def test_invalid_range_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AprunModel(min_seconds=5, max_seconds=1).sample(rng)


class TestBatchScheduler:
    def _scheduler(self, env, count=8):
        m = Machine(env, num_nodes=count)
        pool = m.partition("staging", count)
        return BatchScheduler(env, pool, rng=np.random.default_rng(1))

    def test_allocate_and_release(self, env):
        sched = self._scheduler(env)
        job = sched.allocate(3, "bonds")
        assert sched.free_nodes == 5
        assert len(job.nodes) == 3
        sched.release(job)
        assert sched.free_nodes == 8

    def test_allocate_too_many_raises(self, env):
        sched = self._scheduler(env, 2)
        with pytest.raises(SimulationError):
            sched.allocate(3)

    def test_double_release_raises(self, env):
        sched = self._scheduler(env)
        job = sched.allocate(1)
        sched.release(job)
        with pytest.raises(SimulationError):
            sched.release(job)

    def test_launch_charges_aprun_time(self, env):
        sched = self._scheduler(env)
        results = []

        def proc(env):
            job = yield sched.launch(2, "cna")
            results.append((env.now, job.launch_cost))

        env.process(proc(env))
        env.run()
        now, cost = results[0]
        assert now == pytest.approx(cost)
        assert 3.0 <= cost <= 27.0

    def test_release_nodes_partial(self, env):
        sched = self._scheduler(env)
        job = sched.allocate(4)
        freed = sched.release_nodes(job, 2)
        assert len(freed) == 2
        assert len(job.nodes) == 2
        assert sched.free_nodes == 6

    def test_release_nodes_validation(self, env):
        sched = self._scheduler(env)
        job = sched.allocate(2)
        with pytest.raises(SimulationError):
            sched.release_nodes(job, 3)

    def test_allocation_count_positive(self, env):
        sched = self._scheduler(env)
        with pytest.raises(ValueError):
            sched.allocate(0)
