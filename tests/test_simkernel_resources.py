"""Unit tests for Resource and PriorityResource."""

import pytest

from repro.simkernel import Environment, Interrupt, Preempted, PriorityResource, Resource


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(env, label):
            req = res.request()
            yield req
            log.append((env.now, label))
            yield env.timeout(1)
            res.release(req)

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert log == [(0.0, "a"), (0.0, "b")]

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, label, hold):
            with (yield res.request()):
                order.append((env.now, label))
                yield env.timeout(hold)

        def spawn(env):
            env.process(user(env, "a", 2))
            yield env.timeout(0.1)
            env.process(user(env, "b", 1))
            env.process(user(env, "c", 1))

        env.process(spawn(env))
        env.run()
        assert order == [(0.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)

        def user(env):
            with (yield res.request()):
                yield env.timeout(1)

        env.process(user(env))
        env.run()
        assert res.count == 0

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        granted = []

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def canceller(env):
            yield env.timeout(1)
            req = res.request()
            yield env.timeout(1)  # still queued behind holder
            assert not req.triggered
            req.cancel()

        def third(env):
            yield env.timeout(3)
            req = res.request()
            yield req
            granted.append(env.now)
            res.release(req)

        env.process(holder(env))
        env.process(canceller(env))
        env.process(third(env))
        env.run()
        assert granted == [10.0]

    def test_count_tracks_users(self, env):
        res = Resource(env, capacity=3)

        def user(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        for _ in range(2):
            env.process(user(env))
        env.run(until=1)
        assert res.count == 2
        env.run()
        assert res.count == 0


class TestPriorityResource:
    def test_priority_ordering(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, label, priority, delay):
            yield env.timeout(delay)
            req = res.request(priority=priority)
            yield req
            order.append(label)
            yield env.timeout(10)
            res.release(req)

        env.process(user(env, "holder", 0, 0))
        env.process(user(env, "low", 5, 1))
        env.process(user(env, "high", 1, 2))
        env.run()
        # After the holder releases at t=10, "high" (priority 1) goes first.
        assert order == ["holder", "high", "low"]

    def test_preemption_interrupts_victim(self, env):
        res = PriorityResource(env, capacity=1, preemptive=True)
        events = []

        def victim(env):
            req = res.request(priority=5)
            yield req
            try:
                yield env.timeout(100)
            except Interrupt as i:
                assert isinstance(i.cause, Preempted)
                events.append(("preempted", env.now))

        def preemptor(env):
            yield env.timeout(3)
            req = res.request(priority=0, preempt=True)
            yield req
            events.append(("acquired", env.now))
            res.release(req)

        env.process(victim(env))
        env.process(preemptor(env))
        env.run()
        assert events == [("preempted", 3.0), ("acquired", 3.0)]

    def test_no_preemption_of_equal_priority(self, env):
        res = PriorityResource(env, capacity=1, preemptive=True)
        acquired = []

        def victim(env):
            req = res.request(priority=1)
            yield req
            yield env.timeout(10)
            res.release(req)

        def contender(env):
            yield env.timeout(1)
            req = res.request(priority=1, preempt=True)
            yield req
            acquired.append(env.now)
            res.release(req)

        env.process(victim(env))
        env.process(contender(env))
        env.run()
        assert acquired == [10.0]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, label, delay):
            yield env.timeout(delay)
            req = res.request(priority=2)
            yield req
            order.append(label)
            yield env.timeout(5)
            res.release(req)

        env.process(user(env, "first", 0))
        env.process(user(env, "second", 1))
        env.process(user(env, "third", 2))
        env.run()
        assert order == ["first", "second", "third"]
