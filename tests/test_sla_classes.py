"""Tests for per-container SLA classes (deadline vs low-latency).

Section III-A: a checkpointing container "need not complete writing data to
stable storage until the next timestep arrives.  This is in contrast with
another container running code for crack discovery: it should complete with
low latency."
"""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel


def build(env, csym_sla=1.0, spare=4, steps=20):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=14 + spare,
                             spare_staging_nodes=spare,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 5, ComputeModel.ROUND_ROBIN, upstream="helper"),
        # csym service is 30 s at this scale: fine for a 15 s deadline SLA
        # with 2 replicas (throughput), but a low-latency SLA demands more.
        StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds",
                    sla_factor=csym_sla),
        StageConfig("cna", 2, ComputeModel.ROUND_ROBIN, upstream="bonds",
                    standby=True),
    ]
    return PipelineBuilder(env, wl, stages=stages, seed=0).build()


class TestSlaFactor:
    def test_validation(self, env, messenger):
        from repro.containers import Container
        from repro.smartpointer.component import SMARTPOINTER_COMPONENTS

        with pytest.raises(ValueError):
            Container(env, messenger, SMARTPOINTER_COMPONENTS["csym"],
                      ComputeModel.ROUND_ROBIN, None, sla_factor=0)

    def test_deadline_class_left_alone(self):
        """csym latency (30 s) exceeds the interval but its throughput
        sustains the rate: a deadline-class container is not grown."""
        env = Environment()
        pipe = build(env, csym_sla=1.0)
        pipe.run(settle=300)
        assert pipe.containers["csym"].units == 3
        assert not any("csym" in a for a in pipe.global_manager.actions_taken)

    def test_low_latency_class_gets_more_nodes(self):
        """The same component with a low-latency SLA (finish within a third
        of the interval) is sized against the tightened target."""
        env = Environment()
        pipe = build(env, csym_sla=1.0 / 3.0)
        pipe.run(settle=300)
        # units_to_sustain(5 s) for a 30 s RR service = 6 replicas.
        mgr = pipe.managers["csym"]
        assert mgr.units_to_sustain(15.0) == 6
        assert pipe.containers["csym"].units > 3
        assert any("csym" in a and "increase" in a
                   for a in pipe.global_manager.actions_taken)

    def test_low_latency_shrinks_headroom(self):
        env = Environment()
        pipe = build(env, csym_sla=0.5)
        mgr = pipe.managers["csym"]
        # Deadline class would call 3 units (needs 2) headroom 1; the
        # low-latency class needs 4, so it has a shortfall instead.
        assert mgr.headroom(15.0) == 0
        assert mgr.shortfall(15.0) == 1
        pipe.global_manager.stop()
