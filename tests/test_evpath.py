"""Unit tests for the EVPath layer: messages, endpoints, channels, stones,
overlays."""

import pytest

from repro.simkernel import SimulationError
from repro.evpath import Message, MessageType, Messenger, OverlayTree, StoneGraph
from repro.evpath.channel import Channel


class TestMessages:
    def test_sequence_numbers_increase(self):
        a = Message(MessageType.ACK, "x")
        b = Message(MessageType.ACK, "x")
        assert b.seq > a.seq

    def test_reply_correlates(self):
        req = Message(MessageType.INCREASE_REQUEST, "gm")
        rep = req.reply(MessageType.ACK, "cm")
        assert rep.reply_to == req.seq


class TestEndpoints:
    def test_register_and_lookup(self, env, machine, messenger):
        ep = messenger.endpoint(machine.nodes[0], "a")
        assert messenger.lookup("a") is ep

    def test_duplicate_name_rejected(self, env, machine, messenger):
        messenger.endpoint(machine.nodes[0], "a")
        with pytest.raises(SimulationError):
            messenger.endpoint(machine.nodes[1], "a")

    def test_unknown_lookup_raises(self, messenger):
        with pytest.raises(SimulationError):
            messenger.lookup("ghost")

    def test_unregister(self, env, machine, messenger):
        messenger.endpoint(machine.nodes[0], "a")
        messenger.unregister("a")
        with pytest.raises(SimulationError):
            messenger.lookup("a")

    def test_send_delivers(self, env, machine, messenger):
        ep = messenger.endpoint(machine.nodes[1], "dst")
        got = []

        def receiver(env):
            msg = yield ep.recv()
            got.append(msg.payload)

        def sender(env):
            yield messenger.send(
                machine.nodes[0], "dst", Message(MessageType.ACK, "src", payload=7)
            )

        env.process(receiver(env))
        env.process(sender(env))
        env.run()
        assert got == [7]
        assert messenger.messages_sent == 1

    def test_typed_recv_filters(self, env, machine, messenger):
        ep = messenger.endpoint(machine.nodes[1], "dst")
        got = []

        def receiver(env):
            msg = yield ep.recv(MessageType.DECREASE_REQUEST)
            got.append(msg.mtype)

        def sender(env):
            yield messenger.send(machine.nodes[0], "dst", Message(MessageType.ACK, "s"))
            yield messenger.send(
                machine.nodes[0], "dst",
                Message(MessageType.DECREASE_REQUEST, "s", payload={"count": 1}),
            )

        env.process(receiver(env))
        env.process(sender(env))
        env.run()
        assert got == [MessageType.DECREASE_REQUEST]
        assert ep.pending == 1  # the ACK is still waiting

    def test_request_reply_roundtrip(self, env, machine, messenger):
        server_ep = messenger.endpoint(machine.nodes[1], "server")
        client_ep = messenger.endpoint(machine.nodes[0], "client")
        results = []

        def server(env):
            msg = yield server_ep.recv()
            yield messenger.send(
                machine.nodes[1], "client", msg.reply(MessageType.ACK, "server", payload="pong")
            )

        def client(env):
            reply = yield messenger.request(
                machine.nodes[0], client_ep, "server",
                Message(MessageType.SPEEDUP_QUERY, "client", payload="ping"),
            )
            results.append(reply.payload)

        env.process(server(env))
        env.process(client(env))
        env.run()
        assert results == ["pong"]


class TestChannel:
    def test_fixed_pipe(self, env, machine, messenger):
        a = messenger.endpoint(machine.nodes[0], "a")
        b = messenger.endpoint(machine.nodes[1], "b")
        chan = Channel(messenger, a, b)
        got = []

        def receiver(env):
            msg = yield b.recv()
            got.append(msg.payload)

        def sender(env):
            yield chan.send(Message(MessageType.ACK, "a", payload="hi"))

        env.process(receiver(env))
        env.process(sender(env))
        env.run()
        assert got == ["hi"]


class TestStones:
    def test_filter_transform_handler_chain(self, env, machine, messenger):
        graph = StoneGraph(env, messenger)
        out = []
        f = graph.create_stone(machine.nodes[0], "filter", lambda e: e % 2 == 0)
        t = graph.create_stone(machine.nodes[1], "transform", lambda e: e * 10)
        h = graph.create_stone(machine.nodes[2], "handler", out.append)
        f.link(t)
        t.link(h)

        def feed(env):
            for value in range(4):
                yield graph.submit(f, value)

        env.process(feed(env))
        env.run()
        assert out == [0, 20]
        assert f.events_in == 4

    def test_router_selects_output(self, env, machine, messenger):
        graph = StoneGraph(env, messenger)
        left, right = [], []
        r = graph.create_stone(machine.nodes[0], "router", lambda e: 0 if e < 10 else 1)
        r.link(graph.create_stone(machine.nodes[1], "handler", left.append))
        r.link(graph.create_stone(machine.nodes[2], "handler", right.append))

        def feed(env):
            yield graph.submit(r, 5)
            yield graph.submit(r, 50)

        env.process(feed(env))
        env.run()
        assert left == [5]
        assert right == [50]

    def test_router_out_of_range_fails(self, env, machine, messenger):
        graph = StoneGraph(env, messenger)
        r = graph.create_stone(machine.nodes[0], "router", lambda e: 7)
        r.link(graph.create_stone(machine.nodes[1], "handler", lambda e: None))

        def feed(env):
            yield graph.submit(r, 1)

        env.process(feed(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_bad_kind_rejected(self, env, machine, messenger):
        graph = StoneGraph(env, messenger)
        with pytest.raises(ValueError):
            graph.create_stone(machine.nodes[0], "mystery", lambda e: e)

    def test_cross_node_edge_costs_time(self, env, machine, messenger):
        graph = StoneGraph(env, messenger)
        out = []
        a = graph.create_stone(machine.nodes[0], "transform", lambda e: e)
        b = graph.create_stone(machine.nodes[1], "handler", lambda e: out.append(env.now))
        a.link(b)

        def feed(env):
            yield graph.submit(a, 1)

        env.process(feed(env))
        env.run()
        assert out[0] > 0.0


class TestOverlay:
    def test_reports_reach_root(self, env, machine, messenger):
        reports = []
        overlay = OverlayTree(
            env, messenger, machine.nodes[0], machine.nodes[1:9],
            on_report=reports.append, fanout=3,
        )

        def leaf(env):
            yield overlay.submit(machine.nodes[4], {"latency": 1.5})

        env.process(leaf(env))
        env.run()
        assert len(reports) == 1
        assert overlay.messages >= 1

    def test_depth_grows_logarithmically(self, env, machine, messenger):
        small = OverlayTree(env, messenger, machine.nodes[0], machine.nodes[1:4],
                            on_report=lambda r: None, fanout=4)
        big = OverlayTree(env, messenger, machine.nodes[0], machine.nodes[1:16],
                          on_report=lambda r: None, fanout=2)
        assert small.depth() <= big.depth()

    def test_non_leaf_submit_rejected(self, env, machine, messenger):
        overlay = OverlayTree(env, messenger, machine.nodes[0], machine.nodes[1:4],
                              on_report=lambda r: None)
        with pytest.raises(SimulationError):
            overlay.submit(machine.nodes[10], {})

    def test_validation(self, env, machine, messenger):
        with pytest.raises(ValueError):
            OverlayTree(env, messenger, machine.nodes[0], [], on_report=lambda r: None)
        with pytest.raises(ValueError):
            OverlayTree(env, messenger, machine.nodes[0], machine.nodes[1:3],
                        on_report=lambda r: None, fanout=1)


class TestFastSendIdentity:
    """The _FastSend chain must schedule the *identical* event sequence the
    process-based send does — that is the whole byte-identity contract of
    the messenger fast path."""

    @staticmethod
    def _scenario(force_process_path):
        """One fixed send pattern: contended cross-node sends (capacity-1
        NIC channels force queueing) plus an intra-node send."""
        from repro.simkernel import Environment
        from repro.simkernel.events import NORMAL
        from repro.cluster import Machine
        from repro.evpath import Messenger
        from repro.evpath.messages import Message, MessageType

        env = Environment()
        machine = Machine(env, num_nodes=4, cores_per_node=2)
        messenger = Messenger(env, machine.network)
        ep = messenger.endpoint(machine.nodes[1], "dst")
        ep_local = messenger.endpoint(machine.nodes[0], "loop")

        log = []
        orig = env.schedule

        def spy(event, priority=NORMAL, delay=0.0):
            log.append((round(env.now, 12), priority, round(delay, 12),
                        "Request" if type(event).__name__.endswith("Request")
                        else "ev"))
            return orig(event, priority, delay)

        env.schedule = spy

        def send(src, to, msg):
            if force_process_path:
                dest = messenger.lookup(to)
                from repro.evpath.messages import validate_message
                validate_message(msg)
                return env.process(messenger._send(src, dest, msg))
            return messenger.send(src, to, msg)

        done = []

        def sender(env, src, to, payload):
            msg = yield send(src, to, Message(MessageType.ACK, "src", payload=payload))
            done.append((env.now, msg.payload))

        # two cross-node sends from the same source contend for its single
        # NIC send channel; a third from another node contends at the
        # receiver; plus one intra-node loopback
        env.process(sender(env, machine.nodes[0], "dst", 1))
        env.process(sender(env, machine.nodes[0], "dst", 2))
        env.process(sender(env, machine.nodes[2], "dst", 3))
        env.process(sender(env, machine.nodes[0], "loop", 4))

        received = []

        def receiver(env, endpoint, n):
            for _ in range(n):
                msg = yield endpoint.recv()
                received.append((env.now, msg.payload))

        env.process(receiver(env, ep, 3))
        env.process(receiver(env, ep_local, 1))
        env.run()
        stats = machine.network.stats
        return (log, done, received, env.now, messenger.messages_sent,
                messenger.bytes_sent, stats.messages, stats.bytes,
                stats.busy_time, stats.wait_time)

    def test_fast_chain_matches_process_path(self):
        fast = self._scenario(force_process_path=False)
        slow = self._scenario(force_process_path=True)
        assert fast == slow

    def test_fast_path_taken_when_fault_free(self, env, machine, messenger):
        from repro.evpath.channel import _FastSend  # noqa: F401
        from repro.evpath.messages import Message, MessageType
        from repro.simkernel import Event, Process

        messenger.endpoint(machine.nodes[1], "d")
        ev = messenger.send(machine.nodes[0], "d",
                            Message(MessageType.ACK, "s"))
        assert type(ev) is Event  # chain result, not a Process
        env.run()
        assert ev.value.mtype is MessageType.ACK

    def test_fallback_when_faults_armed(self, env, machine, messenger):
        from repro.evpath.messages import Message, MessageType
        from repro.simkernel import Process

        messenger.endpoint(machine.nodes[1], "d")
        machine.network.faults = object.__new__(type("S", (), {
            "transit_check": lambda self, s, d, n: None,
            "delay_factor": lambda self, s, d: 1.0,
        }))
        ev = messenger.send(machine.nodes[0], "d",
                            Message(MessageType.ACK, "s"))
        assert isinstance(ev, Process)  # generic path
        env.run()
        assert ev.value.mtype is MessageType.ACK


class TestRetryJitter:
    """The seeded backoff scatter (the thundering-herd fix): ``jitter=0``
    must reproduce the historical fixed ladder byte-for-byte, and a
    nonzero jitter must be deterministic per (seed, key) yet decorrelated
    across seeds and senders."""

    def test_default_is_legacy_ladder(self):
        from repro.evpath.channel import RetryPolicy

        policy = RetryPolicy()
        assert list(policy.delays()) == [0.05, 0.1, 0.2]
        # a key without jitter changes nothing (no hashing on this path)
        assert list(policy.delays(key="n1:ep:1")) == [0.05, 0.1, 0.2]

    def test_jitter_without_key_is_legacy_ladder(self):
        from repro.evpath.channel import RetryPolicy

        policy = RetryPolicy(jitter=0.5, seed=3)
        assert list(policy.delays()) == [0.05, 0.1, 0.2]

    def test_jitter_deterministic_per_seed_and_key(self):
        from repro.evpath.channel import RetryPolicy

        schedule = list(RetryPolicy(jitter=0.5, seed=3).delays(key="n1:ep:7"))
        again = list(RetryPolicy(jitter=0.5, seed=3).delays(key="n1:ep:7"))
        assert schedule == again  # same seed, same sender: same schedule

    def test_jitter_bounded_and_decorrelated(self):
        from repro.evpath.channel import RetryPolicy

        policy = RetryPolicy(jitter=0.5, seed=3)
        ladder = [0.05, 0.1, 0.2]
        schedule = list(policy.delays(key="n1:ep:7"))
        for delay, base in zip(schedule, ladder):
            assert base * 0.5 <= delay < base * 1.5
        assert schedule != ladder  # scatter actually applied
        assert list(RetryPolicy(jitter=0.5, seed=4).delays(key="n1:ep:7")) != schedule
        assert list(policy.delays(key="n2:ep:7")) != schedule

    def test_builder_threads_jitter_and_seed(self):
        from repro.containers.presets import build_failover_pipeline
        from repro.simkernel import Environment

        env = Environment()
        pipe = build_failover_pipeline(env, steps=8, seed=5)
        # the bundled failover spec sets retry_jitter: 0.1; the builder
        # derives the scatter seed from the schedule seed
        assert pipe.messenger.retry.jitter == 0.1
        assert pipe.messenger.retry.seed == 5
