"""Tests for the data-flow control features: stride and output hashing.

Section III-D lists control features beyond resizing: lowering a
container's output frequency to free bandwidth, and adding hashes of the
data to the output for soft error detection.
"""

import pytest

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.costs import ComputeModel


def build(env, steps=20, **kwargs):
    wl = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                             output_interval=15.0, total_steps=steps)
    stages = [
        StageConfig("helper", 4, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 5, ComputeModel.ROUND_ROBIN, upstream="helper"),
        StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
    ]
    return PipelineBuilder(env, wl, stages=stages, seed=0,
                           control_interval=10_000, **kwargs).build()


class TestStride:
    def test_stride_halves_processing(self):
        env = Environment()
        pipe = build(env, steps=20)

        def ctl(env):
            yield env.timeout(1)
            accepted = yield pipe.global_manager.set_stride("csym", 2)
            assert accepted

        env.process(ctl(env))
        pipe.run(settle=300)
        csym = pipe.containers["csym"]
        assert csym.completions == 10  # every other timestep
        assert csym.skipped == 10
        # Upstream stages unaffected.
        assert pipe.containers["bonds"].completions == 20

    def test_stride_refused_for_essential(self):
        env = Environment()
        pipe = build(env, steps=5)

        def ctl(env):
            yield env.timeout(1)
            accepted = yield pipe.global_manager.set_stride("helper", 2)
            assert not accepted

        env.process(ctl(env))
        pipe.run(settle=120)
        assert pipe.containers["helper"].stride == 1
        assert pipe.containers["helper"].completions == 5

    def test_stride_one_restores_full_rate(self):
        env = Environment()
        pipe = build(env, steps=20)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.set_stride("csym", 4)
            yield env.timeout(150)  # ~10 steps at stride 4
            yield pipe.global_manager.set_stride("csym", 1)

        env.process(ctl(env))
        pipe.run(settle=300)
        csym = pipe.containers["csym"]
        # Stride 4 for the first ~10 steps (~3 processed), full rate after.
        assert 10 < csym.completions < 20
        assert csym.skipped > 0

    def test_invalid_stride_rejected(self):
        env = Environment()
        pipe = build(env, steps=5)

        def ctl(env):
            yield env.timeout(1)
            accepted = yield pipe.global_manager.set_stride("csym", 0)
            assert not accepted

        env.process(ctl(env))
        pipe.run(settle=120)

    def test_stride_recorded_in_actions(self):
        env = Environment()
        pipe = build(env, steps=5)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.set_stride("csym", 3)

        env.process(ctl(env))
        pipe.run(settle=120)
        assert "stride csym 1/3" in pipe.global_manager.actions_taken


class TestHashing:
    def test_hashing_attaches_integrity(self):
        env = Environment()
        pipe = build(env, steps=6)

        def ctl(env):
            yield env.timeout(1)
            accepted = yield pipe.global_manager.set_hashing("bonds", True)
            assert accepted

        env.process(ctl(env))
        pipe.run(settle=300)
        # CSym's input chunks came from bonds: they carry integrity tags.
        # We verify via the chunks csym wrote to disk — the derive() output
        # of csym does not inherit the tag, so check bonds' own emissions:
        # they were consumed; instead assert the flag held and work happened.
        assert pipe.containers["bonds"].hashing
        assert pipe.containers["bonds"].completions == 6

    def test_hash_cost_slows_service(self):
        """Hashing charges real compute: per-chunk latency rises by about
        nbytes / 2 GiB/s."""
        def run(hashing):
            env = Environment()
            pipe = build(env, steps=8)

            def ctl(env):
                yield env.timeout(1)
                if hashing:
                    yield pipe.global_manager.set_hashing("bonds", True)

            env.process(ctl(env))
            pipe.run(settle=300)
            series = pipe.telemetry.get("bonds", "latency_by_step")
            return sum(series.values) / len(series.values)

        plain = run(False)
        hashed = run(True)
        assert hashed > plain

    def test_hashing_toggle_off(self):
        env = Environment()
        pipe = build(env, steps=6)

        def ctl(env):
            yield env.timeout(1)
            yield pipe.global_manager.set_hashing("bonds", True)
            yield env.timeout(30)
            yield pipe.global_manager.set_hashing("bonds", False)

        env.process(ctl(env))
        pipe.run(settle=300)
        assert not pipe.containers["bonds"].hashing
        assert "hashing bonds off" in pipe.global_manager.actions_taken


class TestChunkIntegrityField:
    def test_integrity_set_on_emitted_chunks(self, env):
        """Unit-level: a hashing container stamps its output chunks."""
        from tests.test_containers_runtime import Rig

        rig = Rig(env, units=1)
        rig.container.hashing = True
        rig.feed(2, interval=1.0)
        env.run(until=60)
        # The emitted chunks went to the disk sink; integrity was set on the
        # out-chunk before emit (observable through on_complete).
        seen = []
        rig2 = Rig(env, units=1)
        rig2.container.hashing = True
        rig2.container.on_complete = lambda c, i, o: seen.append(o.integrity)
        rig2.feed(2, interval=1.0)
        env.run(until=120)
        assert all(tag is not None and tag.startswith("xxh64:") for tag in seen)
