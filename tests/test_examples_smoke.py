"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess with the repository's interpreter;
the assertions check the headline line of each script's output so a silent
regression in an example (not just a crash) fails the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "decrease helper" in out and "increase bonds" in out
        assert "blocked I/O: 0.00s" in out

    def test_resource_stealing_demo(self):
        out = run_example("resource_stealing_demo.py")
        assert "crack detected: branch to CNA" in out
        assert "Application blocked time: 0.00s" in out

    def test_offline_fallback_demo(self):
        out = run_example("offline_fallback_demo.py")
        assert "offline bonds" in out
        assert "Post-processing backlog" in out

    def test_transactions_demo(self):
        out = run_example("transactions_demo.py")
        assert "committed=True" in out
        assert "node conservation: 13 before, 13 after (OK)" in out

    def test_interactive_visualization(self):
        out = run_example("interactive_visualization.py")
        assert "interactive launch viz" in out
        assert "sustains rate" in out

    def test_fragment_tracking(self):
        out = run_example("fragment_tracking.py")
        assert "split" in out
        assert "separated into" in out

    def test_flame_front_pipeline(self):
        out = run_example("flame_front_pipeline.py")
        assert "Measured mean front speed" in out

    def test_crack_detection_pipeline(self, tmp_path):
        out = run_example("crack_detection_pipeline.py", str(tmp_path),
                          timeout=400)
        assert "break detected" in out
        assert "Post-branch analyses:" in out
        assert list(tmp_path.glob("*.bp"))
