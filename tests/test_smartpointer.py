"""Tests for the SmartPointer analytics kernels and cost models."""

import numpy as np
import pytest

from repro.lammps import hex_lattice, fcc_lattice
from repro.lammps.crack import BOND_CUTOFF, CrackExperiment
from repro.lammps.lattice import R0
from repro.smartpointer import (
    SMARTPOINTER_COMPONENTS,
    SMARTPOINTER_COSTS,
    adjacency_list,
    bonds_adjacency,
    central_symmetry,
    common_neighbor_analysis,
    detect_break,
    helper_merge,
)
from repro.smartpointer.bonds import coordination_numbers
from repro.smartpointer.cna import CNA_FCC, CNA_OTHER, CNA_TRIANGULAR, cna_dense, pair_signatures
from repro.smartpointer.costs import ComputeModel
from repro.smartpointer.helper import partition_atoms


def make_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "id": np.arange(n, dtype=np.uint32),
        "x": rng.random(n),
        "y": rng.random(n),
    }


class TestHelper:
    def test_merge_restores_order(self):
        data = make_data()
        fragments = partition_atoms(data, 4)
        # Shuffle fragment order: the tree receives them in arrival order.
        merged = helper_merge(fragments[::-1])
        np.testing.assert_array_equal(merged["id"], data["id"])
        np.testing.assert_array_equal(merged["x"], data["x"])

    def test_merge_rejects_duplicates(self):
        data = make_data(10)
        with pytest.raises(ValueError, match="duplicate"):
            helper_merge([data, data])

    def test_merge_rejects_mismatched_fields(self):
        a = {"id": np.arange(3), "x": np.zeros(3)}
        b = {"id": np.arange(3, 6), "y": np.zeros(3)}
        with pytest.raises(ValueError):
            helper_merge([a, b])

    def test_merge_needs_id(self):
        with pytest.raises(ValueError):
            helper_merge([{"x": np.zeros(3)}])

    def test_partition_roundtrip(self):
        data = make_data(37)
        fragments = partition_atoms(data, 5)
        assert sum(len(f["id"]) for f in fragments) == 37
        merged = helper_merge(fragments)
        np.testing.assert_array_equal(merged["x"], data["x"])


class TestBonds:
    def test_methods_agree(self):
        pos, _ = hex_lattice(10, 8)
        naive = bonds_adjacency(pos, BOND_CUTOFF, "naive")
        fast = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        assert {tuple(p) for p in naive} == {tuple(p) for p in fast}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            bonds_adjacency(np.zeros((3, 2)), 1.0, "quantum")

    def test_adjacency_list_symmetry(self):
        pos, _ = hex_lattice(6, 6)
        pairs = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        adj = adjacency_list(pairs, len(pos))
        for i, neighbors in enumerate(adj):
            for j in neighbors:
                assert i in adj[int(j)]

    def test_coordination_interior_is_six(self):
        pos, box = hex_lattice(12, 12)
        pairs = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        coord = coordination_numbers(pairs, len(pos))
        interior = (
            (pos[:, 0] > 3) & (pos[:, 0] < box[0, 1] - 3)
            & (pos[:, 1] > 3) & (pos[:, 1] < box[1, 1] - 3)
        )
        assert np.all(coord[interior] == 6)


class TestCSym:
    def test_perfect_lattice_scores_zero(self):
        pos, box = hex_lattice(12, 10)
        csp = central_symmetry(pos, num_neighbors=6, cutoff=1.5)
        interior = (
            (pos[:, 0] > 3) & (pos[:, 0] < box[0, 1] - 3)
            & (pos[:, 1] > 3) & (pos[:, 1] < box[1, 1] - 3)
        )
        assert csp[interior].max() < 1e-12

    def test_surface_atoms_score_high(self):
        pos, box = hex_lattice(12, 10)
        csp = central_symmetry(pos, num_neighbors=6, cutoff=1.5)
        edge = pos[:, 1] < 0.1
        assert csp[edge].min() > 0.5

    def test_fcc_lattice_scores_zero(self):
        pos, box = fcc_lattice(4, 4, 4)
        csp = central_symmetry(pos, num_neighbors=12, cutoff=R0 * 1.2)
        center = box[:, 1] / 2
        idx = int(np.argmin(np.linalg.norm(pos - center, axis=1)))
        assert csp[idx] < 1e-12

    def test_odd_neighbor_count_rejected(self):
        with pytest.raises(ValueError):
            central_symmetry(np.zeros((4, 2)), num_neighbors=5)

    def test_detect_break_on_real_crack(self):
        """CSym's break detector fires when (and only when) the tensile test
        actually breaks bonds — validated against the MD ground truth."""
        exp = CrackExperiment(nx=30, ny=18, md_steps_per_epoch=40)
        ref = exp.reference
        saw_break = False
        for frame in exp.frames(max_epochs=40):
            broke, mask = detect_break(frame.snapshot.positions, ref, BOND_CUTOFF)
            ground_truth = frame.broken_fraction > 0
            assert broke == ground_truth
            saw_break = saw_break or broke
        assert saw_break

    def test_detect_break_empty_reference(self):
        broke, mask = detect_break(np.zeros((5, 2)), np.empty((0, 2), dtype=int), 1.0)
        assert not broke
        assert len(mask) == 0


class TestCNA:
    def test_fcc_interior_labeled(self):
        pos, box = fcc_lattice(5, 5, 5)
        pairs = bonds_adjacency(pos, R0 * 1.2, "celllist")
        labels = common_neighbor_analysis(pairs, len(pos))
        center = box[:, 1] / 2
        idx = int(np.argmin(np.linalg.norm(pos - center, axis=1)))
        assert labels[idx] == CNA_FCC

    def test_triangular_interior_labeled(self):
        pos, box = hex_lattice(12, 10)
        pairs = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        labels = common_neighbor_analysis(pairs, len(pos))
        interior = (
            (pos[:, 0] > 3) & (pos[:, 0] < box[0, 1] - 3)
            & (pos[:, 1] > 3) & (pos[:, 1] < box[1, 1] - 3)
        )
        assert (labels[interior] == CNA_TRIANGULAR).mean() > 0.9

    def test_surface_is_other(self):
        pos, _ = hex_lattice(8, 8)
        pairs = bonds_adjacency(pos, BOND_CUTOFF, "celllist")
        labels = common_neighbor_analysis(pairs, len(pos))
        corner = int(np.argmin(pos[:, 0] + pos[:, 1]))
        assert labels[corner] == CNA_OTHER

    def test_crack_faces_become_other(self):
        """After a crack, formerly-crystalline atoms get relabeled."""
        exp = CrackExperiment(nx=28, ny=16, md_steps_per_epoch=40)
        pairs0 = bonds_adjacency(exp.system.positions, BOND_CUTOFF, "celllist")
        before = (common_neighbor_analysis(pairs0, exp.system.natoms) == CNA_TRIANGULAR).sum()
        for frame in exp.frames(max_epochs=40):
            pass
        pairs1 = bonds_adjacency(frame.snapshot.positions, BOND_CUTOFF, "celllist")
        after = (common_neighbor_analysis(pairs1, exp.system.natoms) == CNA_TRIANGULAR).sum()
        assert after < before

    def test_pair_signature_values(self):
        pos, box = fcc_lattice(4, 4, 4)
        pairs = bonds_adjacency(pos, R0 * 1.2, "celllist")
        sigs = pair_signatures(pairs, len(pos))
        center = box[:, 1] / 2
        idx = int(np.argmin(np.linalg.norm(pos - center, axis=1)))
        central_sigs = [s for (i, j), s in sigs.items() if idx in (i, j)]
        assert central_sigs.count((4, 2, 1)) == 12

    def test_dense_variant_counts_common_neighbors(self):
        a = np.array(
            [[0, 1, 1, 0], [1, 0, 1, 1], [1, 1, 0, 0], [0, 1, 0, 0]], dtype=bool
        )
        counts = cna_dense(a)
        # atoms 0 and 1 share neighbour 2 only
        assert counts[0, 1] == 1

    def test_dense_validation(self):
        with pytest.raises(ValueError):
            cna_dense(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            cna_dense(np.array([[0, 1], [0, 0]]))


class TestCostModels:
    def test_table1_complexity_labels(self):
        assert SMARTPOINTER_COMPONENTS["helper"].complexity == "O(n)"
        assert SMARTPOINTER_COMPONENTS["bonds"].complexity == "O(n^2)"
        assert SMARTPOINTER_COMPONENTS["csym"].complexity == "O(n)"
        assert SMARTPOINTER_COMPONENTS["cna"].complexity == "O(n^3)"

    def test_table1_compute_models(self):
        assert SMARTPOINTER_COMPONENTS["helper"].compute_models == (ComputeModel.TREE,)
        assert ComputeModel.PARALLEL in SMARTPOINTER_COMPONENTS["bonds"].compute_models
        assert ComputeModel.PARALLEL not in SMARTPOINTER_COMPONENTS["csym"].compute_models

    def test_table1_branching_flags(self):
        assert SMARTPOINTER_COMPONENTS["bonds"].dynamic_branching
        assert not SMARTPOINTER_COMPONENTS["helper"].dynamic_branching
        assert not SMARTPOINTER_COMPONENTS["cna"].dynamic_branching

    def test_rr_keeps_per_chunk_time(self):
        cost = SMARTPOINTER_COSTS["bonds"]
        t1 = cost.service_time(1_000_000, 1, ComputeModel.ROUND_ROBIN)
        t8 = cost.service_time(1_000_000, 8, ComputeModel.ROUND_ROBIN)
        assert t1 == t8

    def test_rr_scales_throughput(self):
        cost = SMARTPOINTER_COSTS["bonds"]
        assert cost.throughput(1_000_000, 8) == pytest.approx(
            8 * cost.throughput(1_000_000, 1)
        )

    def test_tree_divides_service_time(self):
        cost = SMARTPOINTER_COSTS["helper"]
        t1 = cost.service_time(1_000_000, 1, ComputeModel.TREE)
        t4 = cost.service_time(1_000_000, 4, ComputeModel.TREE)
        assert t4 == pytest.approx(t1 / 4)

    def test_parallel_has_overhead(self):
        cost = SMARTPOINTER_COSTS["bonds"]
        ideal = cost.serial_time(1_000_000) / 16
        actual = cost.service_time(1_000_000, 16, ComputeModel.PARALLEL)
        assert actual > ideal

    def test_units_to_sustain_monotone_in_atoms(self):
        cost = SMARTPOINTER_COSTS["bonds"]
        needs = [cost.units_to_sustain(n, 15.0) for n in (8_819_989, 17_639_979, 35_279_958)]
        assert needs[0] < needs[1] < needs[2]

    def test_calibration_shape(self):
        """The relationships DESIGN.md requires of the figure experiments."""
        from repro.lammps.workload import atoms_for_nodes

        bonds, helper = SMARTPOINTER_COSTS["bonds"], SMARTPOINTER_COSTS["helper"]
        # 256 nodes: bonds needs one more replica than its allocation of 4.
        assert bonds.units_to_sustain(atoms_for_nodes(256), 15.0) == 5
        # helper is over-provisioned at 4 tree nodes (needs only 2).
        assert helper.units_to_sustain(atoms_for_nodes(256), 15.0, ComputeModel.TREE) == 2
        # 512: need exceeds allocation (9) plus spares (4).
        assert bonds.units_to_sustain(atoms_for_nodes(512), 15.0) > 13
        # 1024: unreachable with the whole staging area.
        assert bonds.units_to_sustain(atoms_for_nodes(1024), 15.0) > 24

    def test_validation(self):
        cost = SMARTPOINTER_COSTS["csym"]
        with pytest.raises(ValueError):
            cost.service_time(100, 0)
        with pytest.raises(ValueError):
            cost.units_to_sustain(100, 0)
        with pytest.raises(ValueError):
            cost.serial_time(-5)
