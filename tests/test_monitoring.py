"""Tests for metric windows, telemetry, and bottleneck detection."""

import pytest

from repro.monitoring import LatencyWindow, Telemetry, TimeSeries, find_bottleneck, queue_growth_rate
from repro.monitoring.bottleneck import predict_overflow_time


class TestLatencyWindow:
    def test_mean_over_window(self):
        w = LatencyWindow(maxlen=3)
        for t, lat in [(0, 10), (1, 20), (2, 30), (3, 40)]:
            w.observe(t, lat)
        assert w.mean() == pytest.approx(30.0)  # 10 evicted
        assert w.last() == 40
        assert w.count == 4
        assert len(w) == 3

    def test_empty_window(self):
        w = LatencyWindow()
        assert w.mean() is None
        assert w.last() is None
        assert w.trend() == 0.0

    def test_trend_detects_growth(self):
        w = LatencyWindow(maxlen=8)
        for t in range(8):
            w.observe(float(t), 10.0 + 5.0 * t)
        assert w.trend() == pytest.approx(5.0)

    def test_trend_flat(self):
        w = LatencyWindow(maxlen=8)
        for t in range(8):
            w.observe(float(t), 10.0)
        assert w.trend() == pytest.approx(0.0, abs=1e-9)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow().observe(0, -1)

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            LatencyWindow(maxlen=0)


class TestTelemetry:
    def test_series_created_on_demand(self):
        t = Telemetry()
        t.record("bonds", "latency", 1.0, 70.0)
        t.record("bonds", "latency", 2.0, 72.0)
        series = t.get("bonds", "latency")
        assert series.values == [70.0, 72.0]
        assert t.get("nothing", "here") is None

    def test_marks(self):
        t = Telemetry()
        t.mark(5.0, "increase bonds")
        assert t.events == [(5.0, "increase bonds")]

    def test_scopes(self):
        t = Telemetry()
        t.record("a", "x", 0, 1)
        t.record("b", "y", 0, 1)
        assert t.scopes() == ["a", "b"]

    def test_timeseries_arrays(self):
        s = TimeSeries("s")
        s.record(1, 10)
        s.record(2, 20)
        times, values = s.as_arrays()
        assert list(times) == [1, 2]
        assert s.last() == 20


class TestBottleneck:
    def test_longest_average_latency_wins(self):
        assert find_bottleneck({"a": 5.0, "b": 50.0, "c": 10.0}) == "b"

    def test_none_values_skipped(self):
        assert find_bottleneck({"a": None, "b": 3.0}) == "b"
        assert find_bottleneck({"a": None}) is None
        assert find_bottleneck({}) is None

    def test_queue_growth_rate(self):
        samples = [(0.0, 0.0), (10.0, 5.0)]
        assert queue_growth_rate(samples) == pytest.approx(0.5)
        assert queue_growth_rate([(0, 1)]) == 0.0
        assert queue_growth_rate([(5, 1), (5, 2)]) == 0.0

    def test_predict_overflow(self):
        samples = [(0.0, 0.0), (10.0, 0.5)]
        # occupancy 0.05/s -> hits 1.0 at t=20
        assert predict_overflow_time(samples, capacity=1.0) == pytest.approx(20.0)

    def test_predict_overflow_flat_trend(self):
        assert predict_overflow_time([(0, 0.5), (10, 0.5)], 1.0) is None
        assert predict_overflow_time([], 1.0) is None

    def test_predict_overflow_already_full(self):
        assert predict_overflow_time([(0, 0.2), (10, 1.2)], 1.0) == 10.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            predict_overflow_time([(0, 0)], capacity=0)
