"""Unit tests for Store, FilterStore, reservations, and overflow policies."""

import pytest

from repro.simkernel import Environment, FilterStore, QueueOverflow, Store


class TestStoreBasics:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)
        with pytest.raises(ValueError):
            Store(env, overflow="bogus")

    def test_put_get_order(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5.0, "late")]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            times.append(env.now)
            yield store.put("b")
            times.append(env.now)

        def consumer(env):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0.0, 4.0]

    def test_high_water_tracked(self, env):
        store = Store(env, capacity=10)

        def producer(env):
            for i in range(5):
                yield store.put(i)
            yield store.get()

        env.process(producer(env))
        env.run()
        assert store.high_water == 5

    def test_overflow_raise_policy(self, env):
        store = Store(env, capacity=1, overflow="raise")
        errors = []

        def producer(env):
            yield store.put("a")
            try:
                yield store.put("b")
            except QueueOverflow as e:
                errors.append(e.item)

        env.process(producer(env))
        env.run()
        assert errors == ["b"]
        assert store.overflow_count == 1


class TestReservations:
    def test_reserve_occupies_capacity(self, env):
        store = Store(env, capacity=2)

        def proc(env):
            res = yield store.reserve()
            assert store.full is False
            yield store.put("item")
            assert store.full is True  # 1 item + 1 reservation = capacity
            store.fulfill(res, "reserved-item")
            assert store.size == 2

        env.process(proc(env))
        env.run()

    def test_fulfill_satisfies_waiting_get(self, env):
        store = Store(env, capacity=1)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        def producer(env):
            res = yield store.reserve()
            yield env.timeout(3)
            store.fulfill(res, "x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["x"]

    def test_cancel_returns_slot(self, env):
        store = Store(env, capacity=1)
        log = []

        def proc(env):
            res = yield store.reserve()
            store.cancel_reservation(res)
            yield store.put("after-cancel")
            log.append(store.size)

        env.process(proc(env))
        env.run()
        assert log == [1]

    def test_cancel_queued_reservation(self, env):
        store = Store(env, capacity=1)
        granted = []

        def proc(env):
            r1 = yield store.reserve()
            r2 = store.reserve()  # queued: store is at capacity
            assert not r2.triggered
            store.cancel_reservation(r2)
            store.fulfill(r1, "a")
            granted.append(store.size)

        env.process(proc(env))
        env.run()
        assert granted == [1]

    def test_double_fulfill_rejected(self, env):
        from repro.simkernel import SimulationError

        store = Store(env, capacity=2)
        errors = []

        def proc(env):
            res = yield store.reserve()
            store.fulfill(res, "x")
            try:
                store.fulfill(res, "y")
            except SimulationError:
                errors.append(True)

        env.process(proc(env))
        env.run()
        assert errors == [True]


class TestFilterStore:
    def test_filtered_get(self, env):
        store = FilterStore(env)
        got = []

        def proc(env):
            yield store.put({"k": 1})
            yield store.put({"k": 2})
            item = yield store.get(lambda it: it["k"] == 2)
            got.append(item["k"])
            item = yield store.get()
            got.append(item["k"])

        env.process(proc(env))
        env.run()
        assert got == [2, 1]

    def test_filtered_get_waits_for_match(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda it: it == "wanted")
            got.append((env.now, item))

        def producer(env):
            yield store.put("other")
            yield env.timeout(2)
            yield store.put("wanted")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(2.0, "wanted")]
        assert store.items == ["other"]
