"""Unit tests for the ADIOS layer: variables, groups, BP files, methods."""

import numpy as np
import pytest

from repro.simkernel import Environment
from repro.data import DataChunk
from repro.adios import (
    AdiosStream,
    Group,
    ParallelFileSystem,
    PosixMethod,
    VarInfo,
    read_bp,
    write_bp,
)
from repro.adios.group import lammps_atoms_group
from repro.adios.methods import DataTapMethod, NullMethod
from repro.adios.variable import AttributeSet
from repro.datatap import DataTapLink, DataTapReader, DataTapWriter
from repro.simkernel import Store


class TestVarInfo:
    def test_nbytes_fixed_dims(self):
        v = VarInfo("x", "float64", (10, 3))
        assert v.nbytes() == 240

    def test_nbytes_symbolic_dims(self):
        v = VarInfo("pos", "float32", ("natoms", 3))
        assert v.nbytes({"natoms": 100}) == 1200

    def test_unbound_symbol_raises(self):
        v = VarInfo("pos", "float64", ("natoms",))
        with pytest.raises(KeyError):
            v.nbytes()

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError):
            VarInfo("x", "complex256")

    def test_matches_array(self):
        v = VarInfo("pos", "float64", ("natoms", 2))
        good = np.zeros((5, 2))
        assert v.matches(good, {"natoms": 5})
        assert not v.matches(good, {"natoms": 6})
        assert not v.matches(np.zeros((5, 3)), {"natoms": 5})
        assert not v.matches(good.astype(np.float32), {"natoms": 5})


class TestGroup:
    def test_declare_and_size(self):
        g = Group("atoms", [VarInfo("id", "uint32", ("n",)), VarInfo("x", "float64", ("n",))])
        assert g.nbytes({"n": 10}) == 40 + 80
        assert "id" in g
        assert len(g) == 2

    def test_duplicate_var_rejected(self):
        g = Group("g", [VarInfo("a", "int32")])
        with pytest.raises(ValueError):
            g.declare(VarInfo("a", "int64"))

    def test_lammps_group_matches_table2_ratio(self):
        """Table II implies 8 bytes/atom of streamed output."""
        g = lammps_atoms_group()
        assert g.nbytes({"natoms": 1000}) == 8000


class TestAttributeSet:
    def test_set_get(self):
        attrs = AttributeSet({"a": 1})
        attrs.set("b", "two")
        assert attrs.get("a") == 1
        assert "b" in attrs
        assert attrs.as_dict() == {"a": 1, "b": "two"}

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet().set("", 1)


class TestBPFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.bp"
        variables = {
            "positions": np.random.default_rng(0).random((50, 2)),
            "ids": np.arange(50, dtype=np.uint32),
        }
        attrs = {"provenance": ["helper", "bonds"], "timestep": 3}
        nbytes = write_bp(path, variables, attrs)
        assert nbytes == path.stat().st_size
        got_vars, got_attrs = read_bp(path)
        assert got_attrs == attrs
        np.testing.assert_array_equal(got_vars["positions"], variables["positions"])
        np.testing.assert_array_equal(got_vars["ids"], variables["ids"])

    def test_numpy_scalars_in_attributes(self, tmp_path):
        path = tmp_path / "out.bp"
        write_bp(path, {"x": np.zeros(3)}, {"count": np.int64(5), "f": np.float32(1.5)})
        _, attrs = read_bp(path)
        assert attrs["count"] == 5

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bp"
        path.write_bytes(b"NOTBP---" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            read_bp(path)

    def test_object_dtype_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_bp(tmp_path / "o.bp", {"bad": np.array([object()])})

    def test_empty_arrays_roundtrip(self, tmp_path):
        path = tmp_path / "e.bp"
        write_bp(path, {"empty": np.zeros((0, 3))}, {})
        got, _ = read_bp(path)
        assert got["empty"].shape == (0, 3)


class TestParallelFileSystem:
    def test_write_records_file(self, env, machine):
        fs = ParallelFileSystem(env)
        done = []

        def proc(env):
            record = yield fs.write(machine.nodes[0], "a.bp", 1e6, {"p": 1})
            done.append(record)

        env.process(proc(env))
        env.run()
        assert done[0].name == "a.bp"
        assert fs.find("a.bp")[0].attributes == {"p": 1}
        assert fs.bytes_written == 1e6

    def test_striping_limits_concurrency(self, env, machine):
        fs = ParallelFileSystem(env, stripes=1, per_stream_bandwidth=1e6)
        times = []

        def proc(env, name):
            yield fs.write(machine.nodes[0], name, 1e6, {})
            times.append(env.now)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert times[1] >= times[0] + 0.9  # serialized on the single stripe

    def test_validation(self, env):
        with pytest.raises(ValueError):
            ParallelFileSystem(env, stripes=0)
        with pytest.raises(ValueError):
            ParallelFileSystem(env, per_stream_bandwidth=0)


class TestStreamAndMethods:
    def test_posix_method_attaches_provenance(self, env, machine):
        fs = ParallelFileSystem(env)
        method = PosixMethod(env, fs, machine.nodes[0], prefix="csym")
        group = Group("labels", [VarInfo("l", "uint8", ("n",))])
        stream = AdiosStream(env, group, method)
        c = DataChunk(timestep=7, nbytes=500, provenance=("helper", "bonds", "csym"))

        def proc(env):
            yield stream.write(c)

        env.process(proc(env))
        env.run()
        record = fs.files[0]
        assert record.name == "csym.ts000007.bp"
        assert record.attributes["provenance"] == ["helper", "bonds", "csym"]
        assert record.attributes["timestep"] == 7

    def test_method_switch_midstream(self, env, machine, messenger):
        """The offline path: swap DATATAP for POSIX at runtime."""
        fs = ParallelFileSystem(env)
        link = DataTapLink(env, messenger, "l")
        writer = DataTapWriter(env, messenger, machine.nodes[0], name="w")
        link.add_writer(writer)
        q = Store(env, capacity=4)
        link.add_reader(DataTapReader(env, messenger, machine.nodes[1], "r", q))

        group = Group("g", [VarInfo("x", "float64", ("n",))])
        stream = AdiosStream(env, group, DataTapMethod(writer))

        def proc(env):
            yield stream.write(DataChunk(timestep=0, nbytes=100))
            previous = stream.set_method(PosixMethod(env, fs, machine.nodes[0]))
            assert previous.name == "DATATAP"
            yield stream.write(DataChunk(timestep=1, nbytes=100))

        env.process(proc(env))
        env.run(until=10)
        assert stream.method_switches == 1
        assert len(fs.files) == 1
        assert q.size == 1

    def test_null_method_discards(self, env):
        group = Group("g", [VarInfo("x", "float64")])
        stream = AdiosStream(env, group, NullMethod(env))

        def proc(env):
            yield stream.write(DataChunk(timestep=0, nbytes=10))

        env.process(proc(env))
        env.run()
        assert stream.chunks_out == 1
