"""Tests for the perf-instrumentation layer: registry, report, cache."""

import json

import numpy as np
import pytest

from repro.perf.cache import KERNEL_CACHE, SnapshotKernelCache, array_digest
from repro.perf.registry import REGISTRY, PerfRegistry
from repro.perf.report import (
    SCHEMA_VERSION,
    compare_to_baseline,
    load_kernel_report,
    regressions,
    write_kernel_report,
)


@pytest.fixture(autouse=True)
def clean_global_state():
    REGISTRY.reset()
    KERNEL_CACHE.clear()
    yield
    REGISTRY.reset()
    KERNEL_CACHE.clear()


class TestPerfRegistry:
    def test_timer_accumulates_stats(self):
        reg = PerfRegistry()
        for _ in range(3):
            with reg.timer("k"):
                pass
        stats = reg.stats("k")
        assert stats.calls == 3
        assert stats.total_seconds >= stats.max_seconds >= stats.min_seconds > 0
        assert stats.mean_seconds == pytest.approx(stats.total_seconds / 3)

    def test_timer_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError("x")
        assert reg.stats("boom").calls == 1

    def test_timed_decorator(self):
        reg = PerfRegistry()

        @reg.timed("square")
        def square(x):
            return x * x

        assert square(3) == 9
        assert reg.stats("square").calls == 1

    def test_timed_defaults_to_function_name(self):
        reg = PerfRegistry()

        @reg.timed()
        def helper():
            return 1

        helper()
        assert any("helper" in name for name in reg.snapshot()["timers"])

    def test_counters(self):
        reg = PerfRegistry()
        reg.count("events")
        reg.count("events", 4)
        assert reg.counter("events") == 5
        assert reg.counter("missing") == 0

    def test_snapshot_shape_and_reset(self):
        reg = PerfRegistry()
        with reg.timer("a"):
            pass
        reg.count("b", 2)
        snap = reg.snapshot()
        assert set(snap) == {"timers", "counters"}
        assert snap["counters"] == {"b": 2}
        assert snap["timers"]["a"]["calls"] == 1
        json.dumps(snap)  # must be JSON-serializable as-is
        reg.reset()
        assert reg.snapshot() == {"timers": {}, "counters": {}}

    def test_disabled_registry_is_a_noop(self):
        reg = PerfRegistry(enabled=False)
        with reg.timer("a"):
            pass
        reg.count("b")
        assert reg.snapshot() == {"timers": {}, "counters": {}}


class TestKernelReport:
    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        doc = write_kernel_report(
            path, {"k": 0.5}, counters={"c": 3}, meta={"note": "first"}
        )
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["baseline_comparison"] == {}
        loaded = load_kernel_report(path)
        assert loaded == doc

    def test_rerun_compares_against_previous_file(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        write_kernel_report(path, {"k": 1.0})
        doc = write_kernel_report(path, {"k": 0.25, "new": 1.0})
        entry = doc["baseline_comparison"]["k"]
        assert entry["speedup"] == pytest.approx(4.0)
        assert "new" not in doc["baseline_comparison"]

    def test_compare_skips_nonpositive_and_missing(self):
        comparison = compare_to_baseline(
            {"a": 1.0, "b": 0.0, "c": 2.0}, {"a": 2.0, "b": 1.0}
        )
        assert set(comparison) == {"a"}
        assert comparison["a"]["speedup"] == pytest.approx(2.0)

    def test_regressions_filter(self):
        comparison = compare_to_baseline({"fast": 1.0, "slow": 4.0},
                                         {"fast": 2.0, "slow": 2.0})
        slow = regressions(comparison)
        assert set(slow) == {"slow"}
        assert slow["slow"] == pytest.approx(0.5)

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert load_kernel_report(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_kernel_report(bad) is None


class TestArrayDigest:
    def test_content_determines_digest(self):
        a = np.arange(10, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        b = a.copy()
        b[3] += 1e-12
        assert array_digest(a) != array_digest(b)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(2, 2))


class TestSnapshotKernelCache:
    def test_hit_miss_counters(self):
        cache = SnapshotKernelCache()
        calls = []
        for _ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert calls == [1]
        assert REGISTRY.counter("kernelcache.miss") == 1
        assert REGISTRY.counter("kernelcache.hit") == 2

    def test_lru_eviction(self):
        cache = SnapshotKernelCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a; b is now oldest
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert len(cache) == 2
        recomputed = []
        cache.get_or_compute("b", lambda: recomputed.append(1) or 2)
        assert recomputed == [1]

    def test_disabled_cache_always_computes(self):
        cache = SnapshotKernelCache()
        cache.enabled = False
        calls = []
        for _ in range(2):
            cache.get_or_compute("k", lambda: calls.append(1) or 0)
        assert calls == [1, 1]
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotKernelCache(max_entries=0)

    def test_pairs_cached_by_content_and_readonly(self):
        rng = np.random.default_rng(0)
        pos = rng.random((50, 2)) * 4
        cache = SnapshotKernelCache()
        first = cache.pairs(pos, 0.7)
        again = cache.pairs(pos.copy(), 0.7)
        assert again is first  # content hash, not identity
        assert not first.flags.writeable
        # Mutating the snapshot changes the key: a miss, not a stale hit.
        moved = pos.copy()
        moved[0] += 0.5
        other = cache.pairs(moved, 0.7)
        assert other is not first
        # Lexsorted output.
        if len(first) > 1:
            order = np.lexsort((first[:, 1], first[:, 0]))
            assert np.array_equal(order, np.arange(len(first)))

    def test_csr_cached_and_readonly(self):
        pairs = np.array([[0, 1], [1, 2], [0, 2]])
        cache = SnapshotKernelCache()
        indptr, indices = cache.csr(pairs, 3)
        assert not indptr.flags.writeable and not indices.flags.writeable
        indptr2, indices2 = cache.csr(pairs.copy(), 3)
        assert indptr2 is indptr and indices2 is indices
        assert indptr[-1] == len(indices) == 2 * len(pairs)
