"""Property tests for the control-plane engine's abort semantics.

The engine's contract (DESIGN.md, "Control plane"): whichever round a
protocol aborts in, every *completed* round's compensation runs exactly
once, in reverse order, so no resource acquired along the way is lost —
and a retry of the same spec afterwards behaves as if the aborted attempt
never happened (idempotent recovery, the Section III-A "never lost"
guarantee the trade transaction builds on).
"""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Environment
from repro.controlplane import (
    ControlPlaneEngine,
    ControlPlaneTrace,
    ProtocolAbort,
    ProtocolSpec,
    Round,
)

POOL = list(range(100, 110))


def make_spec(n_rounds, abort_at, delays, state):
    """A protocol whose rounds each take a resource from a shared pool.

    The round at ``abort_at`` aborts before acquiring (the shape real specs
    use: validation aborts carry no side effects of their own); every other
    round's compensation returns its resource.  ``delays[i]`` > 0 makes
    round i a generator handler that holds simulated time.
    """
    env, pool, acquired = state["env"], state["pool"], state["acquired"]

    def make_round(i):
        def take(ctx):
            if i == abort_at:
                raise ProtocolAbort(f"injected at round {i}")
            acquired.append(pool.pop())

        def take_slowly(ctx):
            yield env.timeout(delays[i])
            take(ctx)

        def give_back(ctx):
            pool.append(acquired.pop())

        return Round(
            f"r{i}",
            handler=take_slowly if delays[i] > 0 else take,
            compensate=give_back,
        )

    return ProtocolSpec("prop", tuple(make_round(i) for i in range(n_rounds)))


def run(spec, engine, env):
    done = {}

    def driver(env):
        done["result"] = yield engine.execute(spec, subject="prop")

    env.process(driver(env))
    env.run()
    return done["result"]


@given(
    n_rounds=st.integers(min_value=1, max_value=6),
    abort_offset=st.integers(min_value=0, max_value=5),
    delays=st.lists(
        st.sampled_from([0.0, 0.5, 2.0]), min_size=6, max_size=6
    ),
)
@settings(max_examples=80, deadline=None)
def test_abort_at_any_round_restores_state_and_retry_succeeds(
    n_rounds, abort_offset, delays
):
    abort_at = abort_offset % n_rounds
    env = Environment()
    engine = ControlPlaneEngine(env, trace=ControlPlaneTrace())
    state = {"env": env, "pool": list(POOL), "acquired": []}

    # Aborted attempt: every acquired resource must come back.
    run(make_spec(n_rounds, abort_at, delays, state), engine, env)
    assert sorted(state["pool"]) == sorted(POOL)
    assert state["acquired"] == []

    trace = engine.trace.records[0]
    assert trace.status == "aborted"
    assert trace.abort_reason == f"injected at round {abort_at}"
    # Exactly the completed rounds compensated, in reverse order.
    assert trace.compensated == [f"r{i}" for i in reversed(range(abort_at))]

    # Retry is idempotent: a second aborted attempt leaves the same state...
    run(make_spec(n_rounds, abort_at, delays, state), engine, env)
    assert sorted(state["pool"]) == sorted(POOL)
    assert state["acquired"] == []

    # ...and a clean retry commits as if no abort ever happened.
    run(make_spec(n_rounds, None, delays, state), engine, env)
    committed = engine.trace.records[-1]
    assert committed.status == "committed"
    assert committed.compensated == []
    assert len(state["acquired"]) == n_rounds
    assert sorted(state["pool"] + state["acquired"]) == sorted(POOL)


@given(
    n_rounds=st.integers(min_value=1, max_value=5),
    fail_after=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_mid_round_abort_compensates_only_completed_rounds(n_rounds, fail_after):
    """An abort raised *after* a round's side effect: that round has not
    completed, so its own compensation must not run — the handler is
    responsible for its in-flight state, mirroring how the trade protocol
    splits fault points from the rounds they poison."""
    fail_at = fail_after % n_rounds
    env = Environment()
    engine = ControlPlaneEngine(env, trace=ControlPlaneTrace())
    effects = []

    def make_round(i):
        def handler(ctx):
            effects.append(i)
            if i == fail_at:
                effects.pop()  # self-clean before aborting
                raise ProtocolAbort("late abort")

        def undo(ctx):
            effects.remove(i)

        return Round(f"r{i}", handler=handler, compensate=undo)

    spec = ProtocolSpec("mid", tuple(make_round(i) for i in range(n_rounds)))
    run(spec, engine, env)
    assert effects == []
    assert engine.trace.records[0].compensated == [
        f"r{i}" for i in reversed(range(fail_at))
    ]
